// Package obs is the dependency-free observability layer of the
// imputation pipeline: atomic counters, fixed-bound histograms, and
// per-phase wall-clock accounting, behind a Recorder interface that the
// hot paths can call unconditionally.
//
// The package exists because the RENUVER cost model is dominated by two
// phases the paper calls out explicitly — candidate retrieval/ranking by
// mean LHS distance (Algorithm 3 + Eq. 2) and per-imputation
// IS_FAULTLESS verification (Algorithm 4) — and no scaling work can be
// judged without per-phase visibility into them.
//
// Design rules:
//
//   - Zero external dependencies; nothing beyond the standard library.
//   - The disabled path is as close to free as possible: Nop methods are
//     empty and Enabled() lets callers skip time.Now() calls; the global
//     distance-layer counters cost one atomic load when disabled and one
//     atomic add when enabled.
//   - Metrics is safe for concurrent use by any number of imputation
//     runs; all state is atomic, there are no locks on the record path.
package obs

import "time"

// Counter enumerates the monotone event counters of the pipeline.
type Counter int

const (
	// CtrMissingCells counts cells that were null on input.
	CtrMissingCells Counter = iota
	// CtrImputations counts successfully imputed cells.
	CtrImputations
	// CtrDonorsScanned counts donor tuples examined during candidate
	// generation (Algorithm 3), before LHS filtering.
	CtrDonorsScanned
	// CtrCandidatesEvaluated counts (tuple, cluster) candidates that
	// survived LHS filtering and were scored with Eq. 2.
	CtrCandidatesEvaluated
	// CtrDonorsRanked counts candidates that entered the distance sort.
	CtrDonorsRanked
	// CtrCandidatesTried counts tentative imputations attempted.
	CtrCandidatesTried
	// CtrFaultlessChecks counts IS_FAULTLESS invocations (Algorithm 4).
	CtrFaultlessChecks
	// CtrFaultlessFailures counts IS_FAULTLESS rejections.
	CtrFaultlessFailures
	// CtrClustersScanned counts RHS-threshold clusters examined.
	CtrClustersScanned
	// CtrKeyFlips counts key-RFDcs that became non-key mid-run.
	CtrKeyFlips
	// CtrIndexHits counts candidate scans answered by the donor index.
	CtrIndexHits
	// CtrIndexMisses counts candidate scans that needed the full sweep.
	CtrIndexMisses
	// CtrStreamAppends counts tuples absorbed by incremental sessions.
	CtrStreamAppends
	// CtrDiscoveryPatterns counts tuple-pair distance patterns
	// materialized during RFDc discovery.
	CtrDiscoveryPatterns
	// CtrDiscoveryRFDs counts RFDcs emitted by discovery.
	CtrDiscoveryRFDs
	// CtrDiscoveryWorkers accumulates the effective worker count of each
	// discovery run (Config.Workers with 0 resolved to runtime.NumCPU()).
	CtrDiscoveryWorkers
	// CtrDiscoveryPatternChunks counts the chunks the discovery
	// pattern-space materialization was split into across workers.
	CtrDiscoveryPatternChunks
	// CtrLevenshteinCalls counts exact edit-distance computations.
	CtrLevenshteinCalls
	// CtrLevenshteinEarlyExits counts bounded-predicate calls that
	// short-circuited before completing the full dynamic program
	// (length pre-filter, alphabet-mask pre-filter, or an aborted DP).
	CtrLevenshteinEarlyExits
	// CtrLevenshteinMyers counts edit-distance computations answered by
	// the bit-parallel Myers kernel.
	CtrLevenshteinMyers
	// CtrLevenshteinBanded counts edit-distance computations that ran
	// the banded dynamic program (patterns over 64 runes, or the forced
	// reference kernel).
	CtrLevenshteinBanded
	// CtrLevenshteinMaskRejects counts bounded-predicate calls rejected
	// by the alphabet-mask pre-filter alone (also counted as early
	// exits).
	CtrLevenshteinMaskRejects
	// CtrEngineCacheHits counts pairwise distance lookups answered by the
	// evaluation engine's memoized cache.
	CtrEngineCacheHits
	// CtrEngineCacheMisses counts pairwise distance lookups the engine
	// had to compute and store.
	CtrEngineCacheMisses
	// CtrEngineIndexProbes counts candidate-index probes (equality
	// bucket, numeric range, or length bucket) answered by the engine.
	CtrEngineIndexProbes
	// CtrServeAccepted counts requests admitted by the serve-mode gate.
	CtrServeAccepted
	// CtrServeRejected counts requests shed with 429 because the
	// serve-mode admission queue was full.
	CtrServeRejected
	// CtrServeTimeouts counts serve-mode requests aborted by the
	// per-request deadline or a client disconnect.
	CtrServeTimeouts
	// CtrServePanics counts handler panics recovered in serve mode.
	CtrServePanics
	// CtrDiscoveryShards accumulates the effective shard count of each
	// discovery run (Config.Shards with 0 resolved to 1).
	CtrDiscoveryShards
	// CtrDiscoveryShardSlabBytes accumulates the transient pattern-slab
	// bytes each discovery shard materialized before compact encoding.
	CtrDiscoveryShardSlabBytes
	// CtrDiscoveryPatternPeakBytes accumulates each discovery run's peak
	// pattern-storage bytes: the full slab when unsharded, the largest
	// shard slab plus the compact store when sharded.
	CtrDiscoveryPatternPeakBytes
	// CtrDonorShardFanout counts sub-pool scans fanned out by
	// scatter-gather donor search (shards per sharded candidate scan).
	CtrDonorShardFanout
	// CtrDeltaApplied counts ApplyDelta calls that published a new epoch.
	CtrDeltaApplied
	// CtrDeltaRowsInserted counts tuples inserted by applied deltas.
	CtrDeltaRowsInserted
	// CtrDeltaRowsUpdated counts cell updates applied by deltas.
	CtrDeltaRowsUpdated
	// CtrDeltaRowsDeleted counts rows deleted by applied deltas.
	CtrDeltaRowsDeleted
	// CtrDeltaSigmaDropped counts dependencies the post-delta
	// revalidation dropped from Σ.
	CtrDeltaSigmaDropped
	// CtrDeltaSigmaTightened counts LHS tightenings the post-delta
	// revalidation applied to Σ.
	CtrDeltaSigmaTightened
	// CtrDeltaCacheShardsInvalidated counts distance-cache shards a delta
	// invalidated (only interner compactions remap ids; id-stable deltas
	// invalidate nothing).
	CtrDeltaCacheShardsInvalidated
	// CtrInternersCompacted counts per-attribute interning tables rebuilt
	// with dense ids because deletes left them mostly dead.
	CtrInternersCompacted
	// CtrEpochsRetired counts superseded epochs whose last pinned reader
	// finished.
	CtrEpochsRetired

	numCounters int = iota
)

var counterNames = [...]string{
	CtrMissingCells:           "missing_cells",
	CtrImputations:            "imputations",
	CtrDonorsScanned:          "donors_scanned",
	CtrCandidatesEvaluated:    "candidates_evaluated",
	CtrDonorsRanked:           "donors_ranked",
	CtrCandidatesTried:        "candidates_tried",
	CtrFaultlessChecks:        "faultless_checks",
	CtrFaultlessFailures:      "faultless_failures",
	CtrClustersScanned:        "clusters_scanned",
	CtrKeyFlips:               "key_flips",
	CtrIndexHits:              "index_hits",
	CtrIndexMisses:            "index_misses",
	CtrStreamAppends:          "stream_appends",
	CtrDiscoveryPatterns:      "discovery_patterns",
	CtrDiscoveryRFDs:          "discovery_rfds",
	CtrDiscoveryWorkers:       "discovery_workers",
	CtrDiscoveryPatternChunks: "discovery_pattern_chunks",
	CtrLevenshteinCalls:       "levenshtein_calls",
	CtrLevenshteinEarlyExits:  "levenshtein_early_exits",
	CtrLevenshteinMyers:       "levenshtein_myers",
	CtrLevenshteinBanded:      "levenshtein_banded",
	CtrLevenshteinMaskRejects: "levenshtein_mask_rejects",
	CtrEngineCacheHits:        "engine_cache_hits",
	CtrEngineCacheMisses:      "engine_cache_misses",
	CtrEngineIndexProbes:      "engine_index_probes",
	CtrServeAccepted:          "serve_accepted",
	CtrServeRejected:          "serve_rejected",
	CtrServeTimeouts:          "serve_timeouts",
	CtrServePanics:            "serve_panics",

	CtrDiscoveryShards:           "discovery_shards",
	CtrDiscoveryShardSlabBytes:   "discovery_shard_slab_bytes",
	CtrDiscoveryPatternPeakBytes: "discovery_pattern_peak_bytes",
	CtrDonorShardFanout:          "donor_shard_fanout",

	CtrDeltaApplied:                "delta_applied",
	CtrDeltaRowsInserted:           "delta_rows_inserted",
	CtrDeltaRowsUpdated:            "delta_rows_updated",
	CtrDeltaRowsDeleted:            "delta_rows_deleted",
	CtrDeltaSigmaDropped:           "delta_sigma_dropped",
	CtrDeltaSigmaTightened:         "delta_sigma_tightened",
	CtrDeltaCacheShardsInvalidated: "delta_cache_shards_invalidated",
	CtrInternersCompacted:          "interners_compacted",
	CtrEpochsRetired:               "epochs_retired",
}

// String returns the snake_case name used in snapshots.
func (c Counter) String() string {
	if c < 0 || int(c) >= numCounters {
		return "unknown_counter"
	}
	return counterNames[c]
}

// Phase enumerates the pipeline phases whose wall clock is accounted.
type Phase int

const (
	// PhasePreprocess covers key-RFDc detection and donor-index build.
	PhasePreprocess Phase = iota
	// PhaseCandidateSearch covers Algorithm 3 (donor scans + Eq. 2).
	PhaseCandidateSearch
	// PhaseRanking covers the T_candidate distance sort.
	PhaseRanking
	// PhaseVerify covers IS_FAULTLESS (Algorithm 4).
	PhaseVerify
	// PhaseKeyReeval covers the per-imputation key re-evaluation
	// (Algorithm 1 line 14).
	PhaseKeyReeval
	// PhaseDiscovery covers RFDc discovery end to end.
	PhaseDiscovery
	// PhaseDiscoveryMaterialize covers the O(n²) distance-pattern
	// materialization inside discovery.
	PhaseDiscoveryMaterialize
	// PhaseDiscoverySearch covers the greedy lattice search and
	// dominance pruning inside discovery.
	PhaseDiscoverySearch
	// PhaseDonorMerge covers merging the per-shard candidate lists of
	// scatter-gather donor search.
	PhaseDonorMerge
	// PhaseDeltaBuild covers cloning the logical relation, applying a
	// delta's mutations, and evolving the compiled base columns.
	PhaseDeltaBuild
	// PhaseDeltaRevalidate covers repairing Σ against the pairs a delta's
	// changed rows introduce.
	PhaseDeltaRevalidate
	// PhaseDeltaIndex covers maintaining or rebuilding the candidate
	// index for the new epoch.
	PhaseDeltaIndex
	// PhaseTotal covers one whole Impute run.
	PhaseTotal

	numPhases int = iota
)

var phaseNames = [...]string{
	PhasePreprocess:           "preprocess",
	PhaseCandidateSearch:      "candidate_search",
	PhaseRanking:              "ranking",
	PhaseVerify:               "verify",
	PhaseKeyReeval:            "key_reeval",
	PhaseDiscovery:            "discovery",
	PhaseDiscoveryMaterialize: "discovery_materialize",
	PhaseDiscoverySearch:      "discovery_search",
	PhaseDonorMerge:           "donor_merge",
	PhaseDeltaBuild:           "delta_build",
	PhaseDeltaRevalidate:      "delta_revalidate",
	PhaseDeltaIndex:           "delta_index",
	PhaseTotal:                "total",
}

// String returns the snake_case name used in snapshots.
func (p Phase) String() string {
	if p < 0 || int(p) >= numPhases {
		return "unknown_phase"
	}
	return phaseNames[p]
}

// Hist enumerates the distribution metrics.
type Hist int

const (
	// HistCandidatesPerCell is |T_candidate| per (missing value, cluster).
	HistCandidatesPerCell Hist = iota
	// HistAttemptsPerImputation is how many ranked candidates were tried
	// before one passed verification.
	HistAttemptsPerImputation
	// HistImputeMicros is the per-run Impute latency in microseconds.
	HistImputeMicros
	// HistServeQueueDepth is how many requests were already waiting for a
	// pool slot when each serve-mode request arrived.
	HistServeQueueDepth
	// HistServeQueueWaitMicros is how long each admitted serve-mode
	// request waited in the admission queue before getting a pool slot.
	HistServeQueueWaitMicros

	numHists int = iota
)

var histNames = [...]string{
	HistCandidatesPerCell:     "candidates_per_cell",
	HistAttemptsPerImputation: "attempts_per_imputation",
	HistImputeMicros:          "impute_micros",
	HistServeQueueDepth:       "serve_queue_depth",
	HistServeQueueWaitMicros:  "serve_queue_wait_micros",
}

// String returns the snake_case name used in snapshots.
func (h Hist) String() string {
	if h < 0 || int(h) >= numHists {
		return "unknown_hist"
	}
	return histNames[h]
}

// histBounds are the fixed upper bucket bounds per histogram; every
// histogram gets an implicit +Inf overflow bucket on top.
var histBounds = [numHists][]float64{
	HistCandidatesPerCell:     {0, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000},
	HistAttemptsPerImputation: {1, 2, 3, 5, 10, 20, 50},
	HistImputeMicros:          {100, 1000, 10_000, 100_000, 1e6, 10e6, 100e6},
	HistServeQueueDepth:       {0, 1, 2, 4, 8, 16, 32, 64, 128},
	HistServeQueueWaitMicros:  {10, 100, 1000, 10_000, 100_000, 1e6, 10e6},
}

// Bounds returns the histogram's upper bucket bounds (without the
// implicit +Inf bucket). Callers must not mutate the result.
func (h Hist) Bounds() []float64 { return histBounds[h] }

// counterHelp is the HELP text of each counter in the Prometheus
// exposition — one sentence, mirroring the enum doc comments.
var counterHelp = [...]string{
	CtrMissingCells:           "Cells that were null on input.",
	CtrImputations:            "Successfully imputed cells.",
	CtrDonorsScanned:          "Donor tuples examined during candidate generation, before LHS filtering.",
	CtrCandidatesEvaluated:    "Candidates that survived LHS filtering and were scored with Eq. 2.",
	CtrDonorsRanked:           "Candidates that entered the distance sort.",
	CtrCandidatesTried:        "Tentative imputations attempted.",
	CtrFaultlessChecks:        "IS_FAULTLESS invocations (Algorithm 4).",
	CtrFaultlessFailures:      "IS_FAULTLESS rejections.",
	CtrClustersScanned:        "RHS-threshold clusters examined.",
	CtrKeyFlips:               "Key-RFDcs that became non-key mid-run.",
	CtrIndexHits:              "Candidate scans answered by the donor index.",
	CtrIndexMisses:            "Candidate scans that needed the full sweep.",
	CtrStreamAppends:          "Tuples absorbed by incremental sessions.",
	CtrDiscoveryPatterns:      "Tuple-pair distance patterns materialized during RFDc discovery.",
	CtrDiscoveryRFDs:          "RFDcs emitted by discovery.",
	CtrDiscoveryWorkers:       "Accumulated effective worker count across discovery runs.",
	CtrDiscoveryPatternChunks: "Chunks the discovery pattern-space materialization was split into.",
	CtrLevenshteinCalls:       "Exact edit-distance computations.",
	CtrLevenshteinEarlyExits:  "Bounded-predicate calls that short-circuited before the full dynamic program.",
	CtrLevenshteinMyers:       "Edit-distance computations answered by the bit-parallel Myers kernel.",
	CtrLevenshteinBanded:      "Edit-distance computations that ran the banded dynamic program.",
	CtrLevenshteinMaskRejects: "Bounded-predicate calls rejected by the alphabet-mask pre-filter alone.",
	CtrEngineCacheHits:        "Pairwise distance lookups answered by the engine's memoized cache.",
	CtrEngineCacheMisses:      "Pairwise distance lookups the engine had to compute and store.",
	CtrEngineIndexProbes:      "Candidate-index probes answered by the engine.",
	CtrServeAccepted:          "Requests admitted by the serve-mode gate.",
	CtrServeRejected:          "Requests shed with 429 because the admission queue was full.",
	CtrServeTimeouts:          "Serve-mode requests aborted by the per-request deadline or a client disconnect.",
	CtrServePanics:            "Handler panics recovered in serve mode.",

	CtrDiscoveryShards:           "Accumulated effective shard count across discovery runs.",
	CtrDiscoveryShardSlabBytes:   "Transient pattern-slab bytes materialized per discovery shard.",
	CtrDiscoveryPatternPeakBytes: "Accumulated per-run peak pattern-storage bytes during discovery.",
	CtrDonorShardFanout:          "Sub-pool scans fanned out by scatter-gather donor search.",

	CtrDeltaApplied:                "ApplyDelta calls that published a new epoch.",
	CtrDeltaRowsInserted:           "Tuples inserted by applied deltas.",
	CtrDeltaRowsUpdated:            "Cell updates applied by deltas.",
	CtrDeltaRowsDeleted:            "Rows deleted by applied deltas.",
	CtrDeltaSigmaDropped:           "Dependencies dropped from Sigma by post-delta revalidation.",
	CtrDeltaSigmaTightened:         "LHS tightenings applied to Sigma by post-delta revalidation.",
	CtrDeltaCacheShardsInvalidated: "Distance-cache shards invalidated by deltas.",
	CtrInternersCompacted:          "Per-attribute interning tables rebuilt with dense ids after deletes.",
	CtrEpochsRetired:               "Superseded epochs whose last pinned reader finished.",
}

// Help returns the Prometheus HELP text for the counter.
func (c Counter) Help() string {
	if c < 0 || int(c) >= numCounters {
		return "Unknown counter."
	}
	return counterHelp[c]
}

// histHelp is the HELP text of each histogram.
var histHelp = [...]string{
	HistCandidatesPerCell:     "Candidate count per (missing value, cluster).",
	HistAttemptsPerImputation: "Ranked candidates tried before one passed verification.",
	HistImputeMicros:          "Per-run Impute latency in microseconds.",
	HistServeQueueDepth:       "Requests already waiting for a pool slot at arrival.",
	HistServeQueueWaitMicros:  "Admission-queue wait of admitted requests in microseconds.",
}

// Help returns the Prometheus HELP text for the histogram.
func (h Hist) Help() string {
	if h < 0 || int(h) >= numHists {
		return "Unknown histogram."
	}
	return histHelp[h]
}

// Recorder receives pipeline events. Implementations must be safe for
// concurrent use: the parallel scan workers and concurrent Impute runs
// all record into the same instance.
type Recorder interface {
	// Add increments a counter by delta.
	Add(c Counter, delta int64)
	// Observe records one sample into a histogram.
	Observe(h Hist, v float64)
	// Time accounts wall clock to a phase.
	Time(p Phase, d time.Duration)
	// Enabled reports whether recording has any effect; callers use it
	// to skip sample preparation (e.g. time.Now) on the disabled path.
	Enabled() bool
}

// Nop is the disabled Recorder: every method is an empty body the
// compiler can inline away.
type Nop struct{}

// Add implements Recorder.
func (Nop) Add(Counter, int64) {}

// Observe implements Recorder.
func (Nop) Observe(Hist, float64) {}

// Time implements Recorder.
func (Nop) Time(Phase, time.Duration) {}

// Enabled implements Recorder.
func (Nop) Enabled() bool { return false }

// Since is a convenience for phase accounting: it records the elapsed
// time from start when the recorder is enabled. Pair it with a start
// captured via Now(r).
func Since(r Recorder, p Phase, start time.Time) {
	if r != nil && r.Enabled() {
		r.Time(p, time.Since(start))
	}
}

// Now returns the current time when the recorder is enabled and the
// zero time otherwise, so the disabled path skips the clock read.
func Now(r Recorder) time.Time {
	if r != nil && r.Enabled() {
		return time.Now()
	}
	return time.Time{}
}
