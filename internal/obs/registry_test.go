package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

func testRegistry() (*Registry, *HistVec) {
	reg := NewRegistry(nil)
	vec := NewHistVec("http_request_micros", "HTTP latency per route.", "route",
		[]string{"v1/impute", "v1/explain"}, []float64{100, 1000, 10_000})
	reg.Register(vec)
	reg.Register(NewConstGauge("build_info", "Build metadata.", 1,
		Label{"version", "test"}, Label{"goversion", "go1.x"}))
	reg.Register(NewShardStatsCollector("engine_cache_shard", func() []ShardStat {
		return []ShardStat{{Hits: 10, Misses: 2, Merges: 1}, {Hits: 4, Misses: 1, Merges: 0}}
	}))
	reg.Register(NewDonorShardStatsCollector("donor_shard", func() []DonorShardStat {
		return []DonorShardStat{{Scans: 7, Donors: 420, Candidates: 12}, {Scans: 7, Donors: 419, Candidates: 3}}
	}))
	return reg, vec
}

func TestHistVecObserve(t *testing.T) {
	_, vec := testRegistry()
	i, ok := vec.Index("v1/impute")
	if !ok {
		t.Fatal("route missing from vec")
	}
	vec.Observe(i, 150)
	vec.Observe(i, 150)
	if !vec.ObserveLabel("v1/explain", 50) {
		t.Fatal("ObserveLabel rejected known label")
	}
	if vec.ObserveLabel("nope", 1) {
		t.Fatal("ObserveLabel accepted unknown label")
	}
	vec.Observe(99, 1) // out of range: dropped, not panicking

	s := vec.Series(i)
	if s.Count != 2 || s.Sum != 300 {
		t.Fatalf("impute series = %+v", s)
	}
	name, entry := vec.SnapshotEntry()
	if name != "http_request_micros" {
		t.Fatalf("entry name = %q", name)
	}
	series := entry.(map[string]HistSnapshot)
	if series["v1/explain"].Count != 1 {
		t.Fatalf("explain series = %+v", series["v1/explain"])
	}
}

func TestRegistryPrometheusComposition(t *testing.T) {
	reg, vec := testRegistry()
	reg.Metrics().Add(CtrServeAccepted, 3)
	vec.ObserveLabel("v1/impute", 500)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"renuver_serve_accepted_total 3",
		"# HELP renuver_http_request_micros HTTP latency per route.",
		"# TYPE renuver_http_request_micros histogram",
		`renuver_http_request_micros_bucket{route="v1/impute",le="1000"} 1`,
		`renuver_http_request_micros_sum{route="v1/impute"} 500`,
		`renuver_http_request_micros_count{route="v1/impute"} 1`,
		`renuver_http_request_micros_count{route="v1/explain"} 0`,
		"# TYPE renuver_build_info gauge",
		`renuver_build_info{version="test",goversion="go1.x"} 1`,
		"# TYPE renuver_engine_cache_shard_hits_total counter",
		`renuver_engine_cache_shard_hits_total{shard="0"} 10`,
		`renuver_engine_cache_shard_misses_total{shard="1"} 1`,
		`renuver_engine_cache_shard_merges_total{shard="0"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestRegistrySnapshotExtra(t *testing.T) {
	reg, vec := testRegistry()
	vec.ObserveLabel("v1/impute", 500)
	reg.Metrics().Add(CtrImputations, 2)

	raw, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters map[string]int64 `json:"counters"`
		Extra    map[string]any   `json:"extra"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("registry snapshot not parseable: %v\n%s", err, raw)
	}
	if doc.Counters["imputations"] != 2 {
		t.Fatalf("core counters not merged: %v", doc.Counters)
	}
	for _, key := range []string{"http_request_micros", "build_info", "engine_cache_shards"} {
		if _, ok := doc.Extra[key]; !ok {
			t.Errorf("extra section missing %q: %v", key, doc.Extra)
		}
	}
}

func TestRegistryHandlerNegotiation(t *testing.T) {
	reg, _ := testRegistry()
	h := reg.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Header().Get("Content-Type"), "application/json") {
		t.Fatalf("default content type = %q", rec.Header().Get("Content-Type"))
	}
	if !strings.Contains(rec.Body.String(), `"extra"`) {
		t.Fatal("JSON body lacks extra section")
	}

	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Header().Get("Content-Type") != PrometheusContentType {
		t.Fatalf("negotiated content type = %q", rec.Header().Get("Content-Type"))
	}
	if !strings.Contains(rec.Body.String(), "renuver_build_info") {
		t.Fatal("exposition lacks collector families")
	}
}

func TestHistQuantiles(t *testing.T) {
	m := NewMetrics()
	// Bounds for queue depth: {0, 1, 2, 4, 8, 16, 32, 64, 128}.
	for i := 0; i < 100; i++ {
		m.Observe(HistServeQueueDepth, float64(i%10))
	}
	s := m.Hist(HistServeQueueDepth)
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	// Values 0..9 uniformly: the true median is ~4.5; bucket
	// interpolation must land within the owning bucket (4, 8].
	if s.P50 < 4 || s.P50 > 8 {
		t.Fatalf("p50 = %v, want within (4, 8]", s.P50)
	}
	if s.P95 < 8 || s.P95 > 16 {
		t.Fatalf("p95 = %v, want within (8, 16]", s.P95)
	}
	if s.P99 < s.P95 {
		t.Fatalf("p99 %v < p95 %v", s.P99, s.P95)
	}

	// All samples in the overflow bucket: quantiles clamp to the highest
	// finite bound.
	m.Reset()
	m.Observe(HistServeQueueDepth, 1e9)
	s = m.Hist(HistServeQueueDepth)
	if s.P99 != 128 {
		t.Fatalf("overflow p99 = %v, want 128", s.P99)
	}

	// Empty histogram: all quantiles zero.
	if q := (HistSnapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	s := HistSnapshot{
		Count: 10,
		Buckets: []BucketSnapshot{
			{UpperBound: 10, Count: 5},
			{UpperBound: 20, Count: 5},
			{UpperBound: math.Inf(1), Count: 0},
		},
	}
	// Rank 5 sits exactly at the end of the first bucket.
	if q := s.Quantile(0.5); q != 10 {
		t.Fatalf("q50 = %v, want 10", q)
	}
	// Rank 9 is 4/5 into the (10, 20] bucket: 10 + 0.8*10 = 18.
	if q := s.Quantile(0.9); math.Abs(q-18) > 1e-9 {
		t.Fatalf("q90 = %v, want 18", q)
	}
}
