package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tr := NewTrace("root", SpanContext{})
	sc := tr.Context()
	if !sc.IsValid() {
		t.Fatalf("fresh trace context invalid: %+v", sc)
	}
	header := sc.Traceparent()
	got, ok := ParseTraceparent(header)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected own output", header)
	}
	if got != sc {
		t.Fatalf("round trip: got %+v want %+v", got, sc)
	}
	if !got.Sampled {
		t.Fatalf("trace context should carry sampled flag: %q", header)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7", // too short
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra",
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // unknown version
		"00-ZZf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // non-hex trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-ZZf067aa0ba902b7-01", // non-hex span id
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0Z", // non-hex flags
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // wrong separator
	}
	for _, s := range bad {
		if _, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) accepted malformed input", s)
		}
	}
	good := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	sc, ok := ParseTraceparent(good)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected valid input", good)
	}
	if sc.TraceID.String() != "4bf92f3577b34da6a3ce929d0e0e4736" ||
		sc.SpanID.String() != "00f067aa0ba902b7" || !sc.Sampled {
		t.Fatalf("parsed wrong fields: %+v", sc)
	}
	// Flags other than 01 mean unsampled but still parse.
	sc, ok = ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00")
	if !ok || sc.Sampled {
		t.Fatalf("flags 00 should parse unsampled: ok=%v %+v", ok, sc)
	}
}

func TestTraceRemoteParentLinks(t *testing.T) {
	parent, _ := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	tr := NewTrace("req", parent)
	if tr.TraceID() != parent.TraceID {
		t.Fatalf("trace should reuse upstream trace id")
	}
	tr.Finish()
	root := tr.Tree()
	if root.ParentID != parent.SpanID.String() {
		t.Fatalf("root parent = %q, want upstream span %q", root.ParentID, parent.SpanID)
	}
}

func TestSpanTreeShape(t *testing.T) {
	ring := NewSpanRing(4)
	ctx, tr := StartRequest(context.Background(), ring, "POST /v1/impute", SpanContext{})
	sp := SpanFromContext(ctx)
	if !sp.Enabled() {
		t.Fatal("span from StartRequest context should be enabled")
	}
	imp := sp.Child("impute")
	cell := imp.Child("cell")
	cell.Int("row", 3)
	cell.Str("attr", "City")
	cell.Float("best_distance", 0.25)
	search := cell.Child("candidate_search")
	search.Int("donor_pool", 12)
	search.End()
	rank := cell.Child("ranking")
	rank.End()
	cell.End()
	imp.End()
	tr.Finish()

	if ring.Len() != 1 {
		t.Fatalf("ring.Len() = %d, want 1", ring.Len())
	}
	root := ring.Last().Tree()
	if root.Name != "POST /v1/impute" || root.TraceID == "" {
		t.Fatalf("bad root: %+v", root)
	}
	if len(root.Children) != 1 || root.Children[0].Name != "impute" {
		t.Fatalf("root children = %+v", root.Children)
	}
	cellNode := root.Children[0].Children[0]
	if cellNode.Name != "cell" {
		t.Fatalf("cell node = %+v", cellNode)
	}
	if cellNode.Attrs["row"] != int64(3) || cellNode.Attrs["attr"] != "City" || cellNode.Attrs["best_distance"] != 0.25 {
		t.Fatalf("cell attrs = %+v", cellNode.Attrs)
	}
	names := []string{cellNode.Children[0].Name, cellNode.Children[1].Name}
	if names[0] != "candidate_search" || names[1] != "ranking" {
		t.Fatalf("cell children = %v", names)
	}
	if cellNode.Children[0].Attrs["donor_pool"] != int64(12) {
		t.Fatalf("search attrs = %+v", cellNode.Children[0].Attrs)
	}
	if err := tr.CheckWellFormed(); err != nil {
		t.Fatalf("well-formedness: %v", err)
	}
}

func TestTraceFinishClampsOpenSpans(t *testing.T) {
	tr := NewTrace("req", SpanContext{})
	child := tr.Root().Child("left-open")
	_ = child
	time.Sleep(time.Millisecond)
	tr.Finish()
	root := tr.Tree()
	if len(root.Children) != 1 {
		t.Fatalf("children = %+v", root.Children)
	}
	if root.Children[0].DurationUS <= 0 {
		t.Fatalf("open child not clamped: duration %v", root.Children[0].DurationUS)
	}
	if err := tr.CheckWellFormed(); err != nil {
		t.Fatalf("well-formedness after clamp: %v", err)
	}
	// Finish is idempotent: a second call must not re-push.
	ring := NewSpanRing(2)
	_, tr2 := StartRequest(context.Background(), ring, "r", SpanContext{})
	tr2.Finish()
	tr2.Finish()
	if ring.Len() != 1 {
		t.Fatalf("double Finish pushed twice: ring len %d", ring.Len())
	}
}

func TestSpanCapDrops(t *testing.T) {
	tr := NewTrace("req", SpanContext{})
	root := tr.Root()
	for i := 0; i < MaxSpansPerTrace+10; i++ {
		c := root.Child("c")
		c.End()
	}
	if tr.Len() != MaxSpansPerTrace {
		t.Fatalf("trace len = %d, want %d", tr.Len(), MaxSpansPerTrace)
	}
	// 10 over the cap, plus one: the root occupies a slot, so the last
	// in-cap child is index MaxSpansPerTrace-1.
	if tr.Dropped() != 11 {
		t.Fatalf("dropped = %d, want 11", tr.Dropped())
	}
	// Dropped children are inert, not nil-panics.
	over := root.Child("over")
	over.Int("k", 1)
	over.End()
	tr.Finish()
	if tr.Tree().Dropped == 0 {
		t.Fatal("tree should disclose dropped spans")
	}
}

func TestSpanRingEviction(t *testing.T) {
	ring := NewSpanRing(2)
	var ids []string
	for i := 0; i < 3; i++ {
		_, tr := StartRequest(context.Background(), ring, "r", SpanContext{})
		ids = append(ids, tr.TraceID().String())
		tr.Finish()
	}
	if ring.Len() != 2 {
		t.Fatalf("ring len = %d, want 2", ring.Len())
	}
	if ring.Evicted() != 1 {
		t.Fatalf("evicted = %d, want 1", ring.Evicted())
	}
	traces := ring.Traces()
	if traces[0].TraceID().String() != ids[1] || traces[1].TraceID().String() != ids[2] {
		t.Fatalf("ring retained wrong traces")
	}
	if ring.Last().TraceID().String() != ids[2] {
		t.Fatalf("Last() is not the newest trace")
	}
}

func TestDisabledSpanIsInert(t *testing.T) {
	sp := SpanFromContext(context.Background())
	if sp.Enabled() {
		t.Fatal("plain context should yield the disabled span")
	}
	child := sp.Child("x")
	child.Int("k", 1)
	child.Str("k", "v")
	child.Float("k", 1.5)
	child.End()
	if _, ok := child.SpanContext(); ok {
		t.Fatal("disabled span should have no context")
	}
	if child.Trace() != nil {
		t.Fatal("disabled span should have no trace")
	}
}

func TestSpanDisabledZeroAlloc(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		sp := SpanFromContext(ctx)
		c := sp.Child("cell")
		c.Int("row", 1)
		c.Str("attr", "City")
		c.Float("d", 0.5)
		cc := c.Child("candidate_search")
		cc.End()
		c.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %v per run, want 0", allocs)
	}
}

func TestTraceWriteJSONL(t *testing.T) {
	ring := NewSpanRing(4)
	_, tr := StartRequest(context.Background(), ring, "req", SpanContext{})
	c := tr.Root().Child("impute")
	c.Int("cells", 2)
	c.End()
	tr.Finish()

	var buf bytes.Buffer
	if err := ring.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var lines []map[string]any
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, rec)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL lines, want 2", len(lines))
	}
	rootRec, childRec := lines[0], lines[1]
	if rootRec["trace_id"] != tr.TraceID().String() || childRec["trace_id"] != rootRec["trace_id"] {
		t.Fatalf("trace ids differ: %v vs %v", rootRec["trace_id"], childRec["trace_id"])
	}
	if childRec["parent_id"] != rootRec["span_id"] {
		t.Fatalf("child parent_id %v != root span_id %v", childRec["parent_id"], rootRec["span_id"])
	}
	if childRec["attrs"].(map[string]any)["cells"] != float64(2) {
		t.Fatalf("child attrs = %v", childRec["attrs"])
	}
	if childRec["end_unix_nano"].(float64) == 0 {
		t.Fatal("child end not recorded")
	}
}

func TestSpansHandler(t *testing.T) {
	// nil ring: mounted but disabled.
	rr := httptest.NewRecorder()
	SpansHandler(nil).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/spans", nil))
	if rr.Code != 404 {
		t.Fatalf("nil ring status = %d, want 404", rr.Code)
	}

	ring := NewSpanRing(8)
	for i := 0; i < 3; i++ {
		_, tr := StartRequest(context.Background(), ring, "req", SpanContext{})
		tr.Root().Child("impute").End()
		tr.Finish()
	}
	rr = httptest.NewRecorder()
	SpansHandler(ring).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/spans", nil))
	if rr.Code != 200 {
		t.Fatalf("status = %d body %s", rr.Code, rr.Body)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type = %q", ct)
	}
	var trees []SpanNode
	if err := json.Unmarshal(rr.Body.Bytes(), &trees); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(trees) != 3 {
		t.Fatalf("got %d trees, want 3", len(trees))
	}
	if len(trees[0].Children) != 1 || trees[0].Children[0].Name != "impute" {
		t.Fatalf("tree shape: %+v", trees[0])
	}

	// ?n= limits to the newest n.
	rr = httptest.NewRecorder()
	SpansHandler(ring).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/spans?n=2", nil))
	trees = nil
	if err := json.Unmarshal(rr.Body.Bytes(), &trees); err != nil {
		t.Fatal(err)
	}
	if len(trees) != 2 {
		t.Fatalf("n=2 returned %d trees", len(trees))
	}

	rr = httptest.NewRecorder()
	SpansHandler(ring).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/spans?n=bogus", nil))
	if rr.Code != 400 {
		t.Fatalf("bogus n status = %d, want 400", rr.Code)
	}
}

func TestTraceConcurrentChildren(t *testing.T) {
	ring := NewSpanRing(4)
	_, tr := StartRequest(context.Background(), ring, "req", SpanContext{})
	root := tr.Root()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c := root.Child("cell")
				c.Int("worker", int64(g))
				cc := c.Child("candidate_search")
				cc.End()
				c.End()
			}
		}(g)
	}
	wg.Wait()
	tr.Finish()
	if err := tr.CheckWellFormed(); err != nil {
		t.Fatalf("concurrent trace malformed: %v", err)
	}
	if tr.Len() != 1+8*50*2 {
		t.Fatalf("trace len = %d, want %d", tr.Len(), 1+8*50*2)
	}
	// Tree building over the full arena must not panic or mis-link.
	var count func(n *SpanNode) int
	count = func(n *SpanNode) int {
		total := 1
		for _, c := range n.Children {
			total += count(c)
		}
		return total
	}
	if got := count(tr.Tree()); got != tr.Len() {
		t.Fatalf("tree holds %d spans, arena holds %d", got, tr.Len())
	}
}

func TestCheckWellFormedDetectsViolations(t *testing.T) {
	tr := NewTrace("root", SpanContext{})
	c := tr.Root().Child("c")
	c.End()
	tr.Finish()
	// Corrupt: child ends after parent.
	tr.spans[1].end = tr.spans[0].end + 100
	if err := tr.CheckWellFormed(); err == nil {
		t.Fatal("child ending after parent not detected")
	}
	tr.spans[1].end = tr.spans[0].end
	// Corrupt: child starts before parent.
	tr.spans[1].start = tr.spans[0].start - 100
	if err := tr.CheckWellFormed(); err == nil {
		t.Fatal("child starting before parent not detected")
	}
	tr.spans[1].start = tr.spans[0].start
	// Corrupt: forward parent reference.
	tr.spans[1].parent = 5
	if err := tr.CheckWellFormed(); err == nil {
		t.Fatal("orphan parent not detected")
	}
}
