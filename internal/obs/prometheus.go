package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// PrometheusContentType is the exposition-format content type served
// when a scraper negotiates text format.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName prefixes a metric name into the renuver namespace.
func promName(name string) string { return "renuver_" + name }

// promFloat renders a float the way Prometheus expects ("+Inf" for the
// overflow bound, shortest round-trip form otherwise).
func promFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promEscapeHelp escapes HELP text per the exposition format (backslash
// and newline only; HELP text is not quoted).
func promEscapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// promHeader writes the # HELP / # TYPE preamble of one metric family.
func promHeader(sb *strings.Builder, name, typ, help string) {
	fmt.Fprintf(sb, "# HELP %s %s\n# TYPE %s %s\n", name, promEscapeHelp(help), name, typ)
}

// appendHistogramSeries writes one histogram series from a snapshot.
// labels, when non-empty, is a rendered `key="value"` list (with
// trailing comma) spliced before the le label and appended bare to the
// _sum/_count lines — how a HistVec emits one series per label under a
// single family header.
func appendHistogramSeries(sb *strings.Builder, name, labels string, hs HistSnapshot) {
	cum := int64(0)
	for _, b := range hs.Buckets {
		cum += b.Count
		fmt.Fprintf(sb, "%s_bucket{%sle=%q} %d\n", name, labels, promFloat(b.UpperBound), cum)
	}
	suffix := ""
	if labels != "" {
		suffix = "{" + strings.TrimSuffix(labels, ",") + "}"
	}
	fmt.Fprintf(sb, "%s_sum%s %s\n", name, suffix, promFloat(hs.Sum))
	fmt.Fprintf(sb, "%s_count%s %d\n", name, suffix, hs.Count)
}

// WritePrometheus renders the metrics in the Prometheus text exposition
// format (version 0.0.4): counters as renuver_<name>_total, phase wall
// clock as renuver_phase_seconds_total / renuver_phase_events_total
// labelled by phase, and histograms with cumulative le buckets. Every
// family carries # HELP and # TYPE lines, and the output order is fixed
// (enum order), so scrapes diff cleanly and strict parsers are happy.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	var sb strings.Builder
	m.appendPrometheus(&sb)
	_, err := io.WriteString(w, sb.String())
	return err
}

func (m *Metrics) appendPrometheus(sb *strings.Builder) {
	for c := 0; c < numCounters; c++ {
		name := promName(Counter(c).String()) + "_total"
		promHeader(sb, name, "counter", Counter(c).Help())
		fmt.Fprintf(sb, "%s %d\n", name, m.counters[c].Load())
	}

	promHeader(sb, promName("phase_seconds_total"), "counter",
		"Wall clock accumulated per pipeline phase, in seconds.")
	for p := 0; p < numPhases; p++ {
		fmt.Fprintf(sb, "%s{phase=%q} %s\n", promName("phase_seconds_total"),
			Phase(p).String(), promFloat(float64(m.phaseNanos[p].Load())/1e9))
	}
	promHeader(sb, promName("phase_events_total"), "counter",
		"Timing events accumulated per pipeline phase.")
	for p := 0; p < numPhases; p++ {
		fmt.Fprintf(sb, "%s{phase=%q} %d\n", promName("phase_events_total"),
			Phase(p).String(), m.phaseCount[p].Load())
	}

	for h := 0; h < numHists; h++ {
		name := promName(Hist(h).String())
		promHeader(sb, name, "histogram", Hist(h).Help())
		appendHistogramSeries(sb, name, "", m.hists[h].snapshot())
	}
}
