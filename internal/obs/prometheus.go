package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// PrometheusContentType is the exposition-format content type served
// when a scraper negotiates text format.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName prefixes a metric name into the renuver namespace.
func promName(name string) string { return "renuver_" + name }

// promFloat renders a float the way Prometheus expects ("+Inf" for the
// overflow bound, shortest round-trip form otherwise).
func promFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the metrics in the Prometheus text exposition
// format (version 0.0.4): counters as renuver_<name>_total, phase wall
// clock as renuver_phase_seconds_total / renuver_phase_events_total
// labelled by phase, and histograms with cumulative le buckets. The
// output order is fixed (enum order), so scrapes diff cleanly.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	var sb strings.Builder
	for c := 0; c < numCounters; c++ {
		name := promName(Counter(c).String()) + "_total"
		fmt.Fprintf(&sb, "# TYPE %s counter\n%s %d\n", name, name, m.counters[c].Load())
	}

	fmt.Fprintf(&sb, "# TYPE %s counter\n", promName("phase_seconds_total"))
	for p := 0; p < numPhases; p++ {
		fmt.Fprintf(&sb, "%s{phase=%q} %s\n", promName("phase_seconds_total"),
			Phase(p).String(), promFloat(float64(m.phaseNanos[p].Load())/1e9))
	}
	fmt.Fprintf(&sb, "# TYPE %s counter\n", promName("phase_events_total"))
	for p := 0; p < numPhases; p++ {
		fmt.Fprintf(&sb, "%s{phase=%q} %d\n", promName("phase_events_total"),
			Phase(p).String(), m.phaseCount[p].Load())
	}

	for h := 0; h < numHists; h++ {
		name := promName(Hist(h).String())
		fmt.Fprintf(&sb, "# TYPE %s histogram\n", name)
		bounds := histBounds[h]
		cum := int64(0)
		for i := range bounds {
			cum += m.histBuckets[h][i].Load()
			fmt.Fprintf(&sb, "%s_bucket{le=%q} %d\n", name, promFloat(bounds[i]), cum)
		}
		cum += m.histBuckets[h][len(bounds)].Load()
		fmt.Fprintf(&sb, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(&sb, "%s_sum %s\n", name, promFloat(math.Float64frombits(m.histSumBits[h].Load())))
		fmt.Fprintf(&sb, "%s_count %d\n", name, m.histCount[h].Load())
	}

	_, err := io.WriteString(w, sb.String())
	return err
}
