package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// closedCell builds one well-formed two-event trace for a cell.
func closedCell(t *testing.T, tr *RingTracer, row, attr int) []TraceEvent {
	t.Helper()
	ct := StartCell(tr, row, attr)
	if ct == nil {
		t.Fatalf("cell (%d,%d) not sampled", row, attr)
	}
	ct.Add(CellStarted(1))
	ct.Add(CellAbandoned("test"))
	return ct.Close()
}

func TestCellTraceSequencing(t *testing.T) {
	tr := NewRingTracer(4, 1)
	ct := StartCell(tr, 7, 2)
	ct.Add(CellStarted(3))
	ct.Add(RuleSelected(0, []string{"A(<=0) -> B(<=0)"}))
	ct.Add(DonorConsidered(5, -1, []AttrDist{{Attr: 0, Name: "A", Dist: 2}}, 2))
	ct.Add(FaultlessVerdict(5, 1, false))
	ct.Add(CandidateRejected(5, -1, 1, "A(<=0) -> B(<=0)", 3))
	ct.Add(CellResolved(6, -1, "v", 1.5, 2))
	evs := ct.Close()

	if len(evs) != 6 {
		t.Fatalf("events = %d, want 6", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != i {
			t.Errorf("event %d Seq = %d", i, ev.Seq)
		}
		if ev.Row != 7 || ev.Attr != 2 {
			t.Errorf("event %d cell = (%d,%d), want (7,2)", i, ev.Row, ev.Attr)
		}
	}
	if evs[0].Kind != EvCellStarted || evs[len(evs)-1].Kind != EvCellResolved {
		t.Errorf("trace not bracketed: first %v last %v", evs[0].Kind, evs[len(evs)-1].Kind)
	}
	if got := tr.Last(); len(got) != 6 {
		t.Fatalf("ring did not receive the cell: %d events", len(got))
	}
}

func TestNilCellTraceIsInert(t *testing.T) {
	var ct *CellTrace
	ct.Add(CellStarted(1)) // must not panic
	if got := ct.Close(); got != nil {
		t.Fatalf("nil Close = %v", got)
	}
	if StartCell(nil, 0, 0) != nil {
		t.Fatal("StartCell(nil tracer) != nil")
	}
	if StartCell(NopTracer{}, 0, 0) != nil {
		t.Fatal("StartCell(NopTracer) != nil")
	}
}

func TestCellTraceEventBudget(t *testing.T) {
	tr := NewRingTracer(2, 1)
	ct := StartCell(tr, 0, 0)
	ct.Add(CellStarted(1))
	for i := 0; i < maxEventsPerCell+50; i++ {
		ct.Add(DonorConsidered(i, -1, nil, 0))
	}
	ct.Add(CellResolved(1, -1, "v", 0, 1))
	evs := ct.Close()
	if len(evs) != maxEventsPerCell+2 {
		t.Fatalf("events = %d, want cap %d + truncation marker + terminal", len(evs), maxEventsPerCell)
	}
	last, marker := evs[len(evs)-1], evs[len(evs)-2]
	if last.Kind != EvCellResolved {
		t.Errorf("terminal survived as %v", last.Kind)
	}
	if marker.Kind != EvTraceTruncated || marker.N != 51 {
		t.Errorf("truncation marker = %+v", marker)
	}
}

func TestRingTracerEviction(t *testing.T) {
	tr := NewRingTracer(2, 1)
	for row := 0; row < 5; row++ {
		closedCell(t, tr, row, 0)
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	if tr.Evicted() != 3 {
		t.Errorf("Evicted = %d, want 3", tr.Evicted())
	}
	cells := tr.Cells()
	if cells[0][0].Row != 3 || cells[1][0].Row != 4 {
		t.Errorf("ring holds rows %d,%d, want oldest 3 then 4", cells[0][0].Row, cells[1][0].Row)
	}
	if last := tr.Last(); last[0].Row != 4 {
		t.Errorf("Last row = %d, want 4", last[0].Row)
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Last() != nil {
		t.Error("Reset did not clear the ring")
	}
}

func TestRingTracerSamplingDeterministic(t *testing.T) {
	tr := NewRingTracer(8, 3)
	sampled := 0
	for row := 0; row < 300; row++ {
		a := tr.Sample(row, 1)
		b := tr.Sample(row, 1)
		if a != b {
			t.Fatalf("Sample(%d,1) not deterministic", row)
		}
		if a {
			sampled++
		}
	}
	// A 1-in-3 hash sample over 300 cells lands near 100; the exact
	// value only needs to be stable and non-degenerate.
	if sampled == 0 || sampled == 300 {
		t.Fatalf("sampled %d of 300 cells at 1-in-3", sampled)
	}
}

func TestRingTracerOnly(t *testing.T) {
	tr := NewRingTracer(8, 1)
	tr.Only(4, 2)
	if tr.Sample(4, 2) != true {
		t.Error("target cell not sampled")
	}
	if tr.Sample(4, 1) || tr.Sample(3, 2) {
		t.Error("non-target cell sampled under Only")
	}
}

func TestRingTracerConcurrentEmit(t *testing.T) {
	tr := NewRingTracer(64, 1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				ct := StartCell(tr, g, i%3)
				ct.Add(CellStarted(1))
				ct.Add(CellResolved(0, -1, "v", 0, 1))
				ct.Close()
			}
		}(g)
	}
	wg.Wait()
	// Every retained trace must be intact — no interleaving of cells.
	for _, cell := range tr.Cells() {
		if len(cell) != 2 || cell[0].Kind != EvCellStarted || cell[1].Kind != EvCellResolved {
			t.Fatalf("mangled trace: %+v", cell)
		}
		if cell[0].Row != cell[1].Row || cell[0].Attr != cell[1].Attr {
			t.Fatalf("foreign events interleaved: %+v", cell)
		}
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := NewRingTracer(4, 1)
	closedCell(t, tr, 1, 0)
	tr.EmitEvent(RuleEmitted(2, "A(<=0) -> B(<=0)", 0, 5))

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var kinds []string
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var doc map[string]any
		if err := json.Unmarshal(sc.Bytes(), &doc); err != nil {
			t.Fatalf("line not JSON: %v: %s", err, sc.Text())
		}
		kinds = append(kinds, doc["kind"].(string))
		for _, key := range []string{"kind", "seq", "row", "attr"} {
			if _, ok := doc[key]; !ok {
				t.Errorf("line missing %q: %s", key, sc.Text())
			}
		}
	}
	want := []string{"cell_started", "cell_abandoned", "rule_emitted"}
	if len(kinds) != len(want) {
		t.Fatalf("lines = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("line %d kind = %s, want %s", i, kinds[i], want[i])
		}
	}
}

func TestTraceEventKindSpecificJSON(t *testing.T) {
	doc, err := json.Marshal(DonorConsidered(3, -1, []AttrDist{{Attr: 1, Name: "City", Dist: 2}}, 2))
	if err != nil {
		t.Fatal(err)
	}
	s := string(doc)
	for _, want := range []string{`"donor":3`, `"source":-1`, `"score":2`, `"City"`} {
		if !strings.Contains(s, want) {
			t.Errorf("donor_considered JSON missing %s: %s", want, s)
		}
	}
	// Fields of other kinds must not leak in.
	for _, reject := range []string{`"ok"`, `"value"`, `"witness"`, `"t"`} {
		if strings.Contains(s, reject) {
			t.Errorf("donor_considered JSON leaks %s: %s", reject, s)
		}
	}
}

func TestTraceHandler(t *testing.T) {
	rec := httptest.NewRecorder()
	TraceHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/trace/last", nil))
	if rec.Code != 404 {
		t.Fatalf("nil tracer status = %d, want 404", rec.Code)
	}

	tr := NewRingTracer(4, 1)
	rec = httptest.NewRecorder()
	TraceHandler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/trace/last", nil))
	if rec.Code != 200 || strings.TrimSpace(rec.Body.String()) != "[]" {
		t.Fatalf("empty tracer = %d %q", rec.Code, rec.Body.String())
	}

	closedCell(t, tr, 2, 1)
	rec = httptest.NewRecorder()
	TraceHandler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/trace/last", nil))
	var evs []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &evs); err != nil {
		t.Fatalf("trace not JSON: %v", err)
	}
	if len(evs) != 2 || evs[0]["kind"] != "cell_started" {
		t.Fatalf("trace/last = %v", evs)
	}
}
