package obs

// The Metrics enums deliberately cover only process-wide scalars; serve
// mode also needs labeled families (per-route latency, per-shard cache
// state, a build-info gauge) whose label sets are only known at startup.
// Rather than growing the enum into a string-keyed registry — and
// giving up its single-atomic record path — labeled families implement
// the small Collector interface and a Registry composes them with a
// Metrics into one /metrics endpoint, in both representations: each
// collector appends its exposition lines (with HELP/TYPE) and
// contributes one named entry to an "extra" section of the JSON
// snapshot.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Collector is one extra metric family composed into a Registry.
// Implementations must be safe for concurrent use.
type Collector interface {
	// AppendPrometheus appends the family's full exposition (HELP, TYPE,
	// samples) to the scrape output.
	AppendPrometheus(sb *strings.Builder)
	// SnapshotEntry returns the family's key and value in the JSON
	// snapshot's "extra" section. The value must be JSON-marshalable.
	SnapshotEntry() (name string, value any)
}

// Registry composes the core Metrics with any number of Collectors into
// one metrics surface. Register is not synchronized against serving:
// register everything at startup, then share freely.
type Registry struct {
	metrics    *Metrics
	collectors []Collector
}

// NewRegistry wraps a Metrics sink (nil means a fresh one).
func NewRegistry(m *Metrics) *Registry {
	if m == nil {
		m = NewMetrics()
	}
	return &Registry{metrics: m}
}

// Metrics returns the registry's core sink.
func (r *Registry) Metrics() *Metrics { return r.metrics }

// Register appends collectors to the exposition, in call order.
func (r *Registry) Register(cs ...Collector) { r.collectors = append(r.collectors, cs...) }

// WritePrometheus renders the core metrics followed by every collector.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var sb strings.Builder
	r.metrics.appendPrometheus(&sb)
	for _, c := range r.collectors {
		c.AppendPrometheus(&sb)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// RegistrySnapshot is the registry's JSON form: the core snapshot plus
// one entry per collector under "extra".
type RegistrySnapshot struct {
	Snapshot
	Extra map[string]any `json:"extra,omitempty"`
}

// Snapshot copies the current state of the core metrics and every
// collector.
func (r *Registry) Snapshot() RegistrySnapshot {
	s := RegistrySnapshot{Snapshot: r.metrics.Snapshot()}
	if len(r.collectors) > 0 {
		s.Extra = make(map[string]any, len(r.collectors))
		for _, c := range r.collectors {
			name, v := c.SnapshotEntry()
			s.Extra[name] = v
		}
	}
	return s
}

// Handler serves the composed registry with the same content
// negotiation as Handler: JSON snapshot by default, text exposition for
// Prometheus scrapers.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if acceptsPrometheus(req.Header.Get("Accept")) {
			w.Header().Set("Content-Type", PrometheusContentType)
			_ = r.WritePrometheus(w)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
}

// ---- labeled histogram vector -------------------------------------------

// HistVec is a fixed-label-set histogram family: one atomic histogram
// per label value, all sharing one bucket grid. The label set is frozen
// at construction — serve mode knows its routes when it builds the mux —
// which keeps Observe a slice index away from the same lock-free path
// the enum histograms use, with no map lookup and no label-churn
// cardinality risk.
type HistVec struct {
	name     string // bare name; promName applied at exposition
	help     string
	labelKey string
	labels   []string
	index    map[string]int
	hists    []histogram
}

// NewHistVec builds a histogram family with one series per label value.
func NewHistVec(name, help, labelKey string, labels []string, bounds []float64) *HistVec {
	v := &HistVec{
		name:     name,
		help:     help,
		labelKey: labelKey,
		labels:   append([]string(nil), labels...),
		index:    make(map[string]int, len(labels)),
		hists:    make([]histogram, len(labels)),
	}
	for i, l := range v.labels {
		v.index[l] = i
		v.hists[i].init(bounds)
	}
	return v
}

// Labels returns the family's label values, in series order.
func (v *HistVec) Labels() []string { return v.labels }

// Index returns the series index of a label value.
func (v *HistVec) Index(label string) (int, bool) {
	i, ok := v.index[label]
	return i, ok
}

// Observe records one sample into series i. Out-of-range indices are
// dropped, mirroring the enum histograms.
func (v *HistVec) Observe(i int, val float64) {
	if i >= 0 && i < len(v.hists) {
		v.hists[i].observe(val)
	}
}

// ObserveLabel records one sample into the series for the label value,
// reporting false for unknown labels.
func (v *HistVec) ObserveLabel(label string, val float64) bool {
	i, ok := v.index[label]
	if ok {
		v.hists[i].observe(val)
	}
	return ok
}

// Series returns one series' snapshot (with derived quantiles).
func (v *HistVec) Series(i int) HistSnapshot {
	if i < 0 || i >= len(v.hists) {
		return HistSnapshot{}
	}
	return v.hists[i].snapshot()
}

// AppendPrometheus implements Collector: one family header, then every
// series' cumulative buckets labeled by the family's label key.
func (v *HistVec) AppendPrometheus(sb *strings.Builder) {
	name := promName(v.name)
	promHeader(sb, name, "histogram", v.help)
	for i, label := range v.labels {
		labels := fmt.Sprintf("%s=%q,", v.labelKey, label)
		appendHistogramSeries(sb, name, labels, v.hists[i].snapshot())
	}
}

// SnapshotEntry implements Collector: a map of label value to series
// snapshot.
func (v *HistVec) SnapshotEntry() (string, any) {
	out := make(map[string]HistSnapshot, len(v.labels))
	for i, label := range v.labels {
		out[label] = v.hists[i].snapshot()
	}
	return v.name, out
}

// ---- constant info gauge ------------------------------------------------

// Label is one key/value pair on a constant gauge.
type Label struct {
	Key, Value string
}

// ConstGauge is a fixed gauge sample — the renuver_build_info pattern:
// the value is always 1 and the payload lives in the labels.
type ConstGauge struct {
	name   string
	help   string
	labels []Label
	value  float64
}

// NewConstGauge builds a constant gauge. Labels render in the given
// order.
func NewConstGauge(name, help string, value float64, labels ...Label) *ConstGauge {
	return &ConstGauge{name: name, help: help, labels: labels, value: value}
}

// AppendPrometheus implements Collector.
func (g *ConstGauge) AppendPrometheus(sb *strings.Builder) {
	name := promName(g.name)
	promHeader(sb, name, "gauge", g.help)
	sb.WriteString(name)
	if len(g.labels) > 0 {
		sb.WriteByte('{')
		for i, l := range g.labels {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(sb, "%s=%q", l.Key, l.Value)
		}
		sb.WriteByte('}')
	}
	fmt.Fprintf(sb, " %s\n", promFloat(g.value))
}

// SnapshotEntry implements Collector: the labels as a flat string map.
func (g *ConstGauge) SnapshotEntry() (string, any) {
	out := make(map[string]string, len(g.labels))
	for _, l := range g.labels {
		out[l.Key] = l.Value
	}
	return g.name, out
}

// FuncGauge is a live gauge sample: the value is read from fn at every
// exposition — the renuver_session_epoch pattern, where the payload is
// the number itself and changes over the process lifetime. fn must be
// safe for concurrent use.
type FuncGauge struct {
	name string
	help string
	fn   func() float64
}

// NewFuncGauge builds a live gauge.
func NewFuncGauge(name, help string, fn func() float64) *FuncGauge {
	return &FuncGauge{name: name, help: help, fn: fn}
}

// AppendPrometheus implements Collector.
func (g *FuncGauge) AppendPrometheus(sb *strings.Builder) {
	name := promName(g.name)
	promHeader(sb, name, "gauge", g.help)
	fmt.Fprintf(sb, "%s %s\n", name, promFloat(g.fn()))
}

// SnapshotEntry implements Collector: the current value.
func (g *FuncGauge) SnapshotEntry() (string, any) {
	return g.name, g.fn()
}

// ---- per-shard cache stats ----------------------------------------------

// ShardStat is one cache shard's counters, as exposed on /metrics. The
// engine package defines its own identical struct — it predates obs in
// the dependency order — and serve adapts between them.
type ShardStat struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Merges int64 `json:"merges"`
}

// ShardStatsCollector exposes a sharded cache's per-shard hit / miss /
// overflow-merge counters, labeled by shard index — the distribution
// view that replaces the old global pair of counters: shard skew (a hot
// shard, a cold hash) is invisible in a sum.
type ShardStatsCollector struct {
	name string // family prefix, e.g. "engine_cache_shard"
	fn   func() []ShardStat
}

// NewShardStatsCollector wires a snapshot closure (called per scrape)
// into the exposition under renuver_<name>_{hits,misses,merges}_total.
func NewShardStatsCollector(name string, fn func() []ShardStat) *ShardStatsCollector {
	return &ShardStatsCollector{name: name, fn: fn}
}

// AppendPrometheus implements Collector.
func (c *ShardStatsCollector) AppendPrometheus(sb *strings.Builder) {
	stats := c.fn()
	families := []struct {
		suffix string
		help   string
		get    func(ShardStat) int64
	}{
		{"hits_total", "Cache lookups answered per shard.", func(s ShardStat) int64 { return s.Hits }},
		{"misses_total", "Cache lookups computed and stored per shard.", func(s ShardStat) int64 { return s.Misses }},
		{"merges_total", "Overflow-tier merges into the frozen tier per shard.", func(s ShardStat) int64 { return s.Merges }},
	}
	for _, f := range families {
		name := promName(c.name + "_" + f.suffix)
		promHeader(sb, name, "counter", f.help)
		for i, s := range stats {
			fmt.Fprintf(sb, "%s{shard=\"%d\"} %d\n", name, i, f.get(s))
		}
	}
}

// SnapshotEntry implements Collector: the raw per-shard slice.
func (c *ShardStatsCollector) SnapshotEntry() (string, any) {
	return c.name + "s", c.fn()
}

// ---- per-shard scatter-gather donor stats -------------------------------

// DonorShardStat is one donor sub-pool's cumulative scatter-gather
// counters, as exposed on /metrics: how many sweeps the sub-pool
// answered, how many donor rows those sweeps examined, and how many
// candidates they returned into the global merge.
type DonorShardStat struct {
	Scans      int64 `json:"scans"`
	Donors     int64 `json:"donors"`
	Candidates int64 `json:"candidates"`
}

// DonorShardStatsCollector exposes a sharded donor pool's scatter-gather
// counters, labeled by shard index — the skew view: a sub-pool that
// returns far fewer candidates than its peers is a partition imbalance
// the summed counters cannot show.
type DonorShardStatsCollector struct {
	name string // family prefix, e.g. "donor_shard"
	fn   func() []DonorShardStat
}

// NewDonorShardStatsCollector wires a snapshot closure (called per
// scrape) into the exposition under
// renuver_<name>_{scans,donors,candidates}_total.
func NewDonorShardStatsCollector(name string, fn func() []DonorShardStat) *DonorShardStatsCollector {
	return &DonorShardStatsCollector{name: name, fn: fn}
}

// AppendPrometheus implements Collector.
func (c *DonorShardStatsCollector) AppendPrometheus(sb *strings.Builder) {
	stats := c.fn()
	families := []struct {
		suffix string
		help   string
		get    func(DonorShardStat) int64
	}{
		{"scans_total", "Scatter-gather sweeps answered per donor sub-pool.", func(s DonorShardStat) int64 { return s.Scans }},
		{"donors_total", "Donor rows examined per sub-pool across scatter-gather sweeps.", func(s DonorShardStat) int64 { return s.Donors }},
		{"candidates_total", "Candidates returned per sub-pool into the global merge.", func(s DonorShardStat) int64 { return s.Candidates }},
	}
	for _, f := range families {
		name := promName(c.name + "_" + f.suffix)
		promHeader(sb, name, "counter", f.help)
		for i, s := range stats {
			fmt.Fprintf(sb, "%s{shard=\"%d\"} %d\n", name, i, f.get(s))
		}
	}
}

// SnapshotEntry implements Collector: the raw per-shard slice.
func (c *DonorShardStatsCollector) SnapshotEntry() (string, any) {
	return c.name + "s", c.fn()
}
