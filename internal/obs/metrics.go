package obs

import (
	"encoding/json"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Metrics is the concrete Recorder: a fixed block of atomics, one slot
// per counter / phase / histogram bucket. It has no locks; every record
// operation is a single atomic RMW (histograms add one more for the sum),
// so it is safe to share across goroutines and across concurrent Impute
// runs.
type Metrics struct {
	counters [numCounters]atomic.Int64
	// phases hold total nanoseconds and event counts.
	phaseNanos [numPhases]atomic.Int64
	phaseCount [numPhases]atomic.Int64
	// histograms: per-histogram bucket counts (len(bounds)+1 with the
	// +Inf overflow), a total count, and a float sum stored as bits.
	histBuckets [numHists][]atomic.Int64
	histCount   [numHists]atomic.Int64
	histSumBits [numHists]atomic.Uint64
}

// NewMetrics returns an empty Metrics sink.
func NewMetrics() *Metrics {
	m := &Metrics{}
	for h := 0; h < numHists; h++ {
		m.histBuckets[h] = make([]atomic.Int64, len(histBounds[h])+1)
	}
	return m
}

// Add implements Recorder.
func (m *Metrics) Add(c Counter, delta int64) {
	if c >= 0 && int(c) < numCounters {
		m.counters[c].Add(delta)
	}
}

// Counter returns a counter's current value.
func (m *Metrics) Counter(c Counter) int64 {
	if c < 0 || int(c) >= numCounters {
		return 0
	}
	return m.counters[c].Load()
}

// Time implements Recorder.
func (m *Metrics) Time(p Phase, d time.Duration) {
	if p >= 0 && int(p) < numPhases {
		m.phaseNanos[p].Add(int64(d))
		m.phaseCount[p].Add(1)
	}
}

// PhaseNanos returns the nanoseconds accumulated by a phase.
func (m *Metrics) PhaseNanos(p Phase) int64 {
	if p < 0 || int(p) >= numPhases {
		return 0
	}
	return m.phaseNanos[p].Load()
}

// Observe implements Recorder.
func (m *Metrics) Observe(h Hist, v float64) {
	if h < 0 || int(h) >= numHists {
		return
	}
	bounds := histBounds[h]
	// sort.SearchFloat64s finds the first bound >= v (bounds are upper
	// inclusive bounds, Prometheus-style "le").
	i := sort.SearchFloat64s(bounds, v)
	m.histBuckets[h][i].Add(1)
	m.histCount[h].Add(1)
	for {
		old := m.histSumBits[h].Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if m.histSumBits[h].CompareAndSwap(old, next) {
			return
		}
	}
}

// Enabled implements Recorder.
func (m *Metrics) Enabled() bool { return true }

// Reset zeroes every counter, phase, and histogram.
func (m *Metrics) Reset() {
	for i := range m.counters {
		m.counters[i].Store(0)
	}
	for i := 0; i < numPhases; i++ {
		m.phaseNanos[i].Store(0)
		m.phaseCount[i].Store(0)
	}
	for h := 0; h < numHists; h++ {
		for i := range m.histBuckets[h] {
			m.histBuckets[h][i].Store(0)
		}
		m.histCount[h].Store(0)
		m.histSumBits[h].Store(0)
	}
}

// PhaseSnapshot is one phase's accumulated wall clock.
type PhaseSnapshot struct {
	Nanos int64 `json:"ns"`
	Count int64 `json:"count"`
}

// BucketSnapshot is one histogram bucket: the count of samples ≤ the
// upper bound. The overflow bucket has UpperBound = +Inf, serialized as
// the string "+Inf".
type BucketSnapshot struct {
	UpperBound float64 `json:"-"`
	Count      int64   `json:"n"`
}

// MarshalJSON emits {"le": bound, "n": count} with "+Inf" for the
// overflow bucket (JSON has no infinity literal).
func (b BucketSnapshot) MarshalJSON() ([]byte, error) {
	type alias struct {
		Le any   `json:"le"`
		N  int64 `json:"n"`
	}
	le := any(b.UpperBound)
	if math.IsInf(b.UpperBound, 1) {
		le = "+Inf"
	}
	return json.Marshal(alias{Le: le, N: b.Count})
}

// HistSnapshot is one histogram's state.
type HistSnapshot struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Buckets []BucketSnapshot `json:"buckets"`
}

// Snapshot is a consistent-enough point-in-time copy of a Metrics: each
// slot is read atomically, though the set of slots is not read under a
// global lock (a snapshot taken mid-run can be off by in-flight events,
// which is the standard expvar/Prometheus trade-off).
type Snapshot struct {
	Counters   map[string]int64         `json:"counters"`
	Phases     map[string]PhaseSnapshot `json:"phases"`
	Histograms map[string]HistSnapshot  `json:"histograms"`
}

// Snapshot copies the current state.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64, numCounters),
		Phases:     make(map[string]PhaseSnapshot, numPhases),
		Histograms: make(map[string]HistSnapshot, numHists),
	}
	for c := 0; c < numCounters; c++ {
		s.Counters[Counter(c).String()] = m.counters[c].Load()
	}
	for p := 0; p < numPhases; p++ {
		s.Phases[Phase(p).String()] = PhaseSnapshot{
			Nanos: m.phaseNanos[p].Load(),
			Count: m.phaseCount[p].Load(),
		}
	}
	for h := 0; h < numHists; h++ {
		bounds := histBounds[h]
		hs := HistSnapshot{
			Count:   m.histCount[h].Load(),
			Sum:     math.Float64frombits(m.histSumBits[h].Load()),
			Buckets: make([]BucketSnapshot, len(bounds)+1),
		}
		for i := range bounds {
			hs.Buckets[i] = BucketSnapshot{UpperBound: bounds[i], Count: m.histBuckets[h][i].Load()}
		}
		hs.Buckets[len(bounds)] = BucketSnapshot{
			UpperBound: math.Inf(1), Count: m.histBuckets[h][len(bounds)].Load(),
		}
		s.Histograms[Hist(h).String()] = hs
	}
	return s
}

// MarshalJSON serializes the live state (expvar-style).
func (m *Metrics) MarshalJSON() ([]byte, error) {
	return json.Marshal(m.Snapshot())
}

// ---- global distance-layer gate -----------------------------------------

// The distance package sits below every pipeline layer and its hot
// functions (Levenshtein and the bounded predicate) are called from deep
// inside per-pair loops where threading a Recorder through every frame
// would distort the measurement it enables. Instead the package records
// into this process-wide sink, gated by one atomic bool so the disabled
// path costs a single atomic load.

var (
	globalEnabled atomic.Bool
	global        = NewMetrics()
)

// Global returns the process-wide metrics sink.
func Global() *Metrics { return global }

// SetGlobalEnabled turns the process-wide sink on or off. It is off by
// default so library users pay nothing; `renuver serve` turns it on.
func SetGlobalEnabled(on bool) { globalEnabled.Store(on) }

// GlobalEnabled reports whether the process-wide sink is recording.
func GlobalEnabled() bool { return globalEnabled.Load() }

// GlobalAdd increments a counter on the process-wide sink when enabled.
func GlobalAdd(c Counter, delta int64) {
	if globalEnabled.Load() {
		global.Add(c, delta)
	}
}
