package obs

import (
	"encoding/json"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// histogram is one lock-free fixed-bound histogram: bucket counts (one
// extra slot for the +Inf overflow), a total count, and a float sum
// stored as bits behind a CAS loop. It is the shared machinery under
// both the enum histograms of Metrics and the labeled HistVec series.
type histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is the +Inf overflow
	count   atomic.Int64
	sumBits atomic.Uint64
}

func (h *histogram) init(bounds []float64) {
	h.bounds = bounds
	h.buckets = make([]atomic.Int64, len(bounds)+1)
}

// observe records one sample: two atomic adds plus the sum CAS.
func (h *histogram) observe(v float64) {
	// sort.SearchFloat64s finds the first bound >= v (bounds are upper
	// inclusive bounds, Prometheus-style "le").
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (h *histogram) reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sumBits.Store(0)
}

// snapshot copies the histogram's state and derives its p50/p95/p99.
func (h *histogram) snapshot() HistSnapshot {
	hs := HistSnapshot{
		Count:   h.count.Load(),
		Sum:     math.Float64frombits(h.sumBits.Load()),
		Buckets: make([]BucketSnapshot, len(h.bounds)+1),
	}
	for i := range h.bounds {
		hs.Buckets[i] = BucketSnapshot{UpperBound: h.bounds[i], Count: h.buckets[i].Load()}
	}
	hs.Buckets[len(h.bounds)] = BucketSnapshot{
		UpperBound: math.Inf(1), Count: h.buckets[len(h.bounds)].Load(),
	}
	hs.P50 = hs.Quantile(0.50)
	hs.P95 = hs.Quantile(0.95)
	hs.P99 = hs.Quantile(0.99)
	return hs
}

// Metrics is the concrete Recorder: a fixed block of atomics, one slot
// per counter / phase / histogram bucket. It has no locks; every record
// operation is a single atomic RMW (histograms add one more for the sum),
// so it is safe to share across goroutines and across concurrent Impute
// runs.
type Metrics struct {
	counters [numCounters]atomic.Int64
	// phases hold total nanoseconds and event counts.
	phaseNanos [numPhases]atomic.Int64
	phaseCount [numPhases]atomic.Int64
	hists      [numHists]histogram
}

// NewMetrics returns an empty Metrics sink.
func NewMetrics() *Metrics {
	m := &Metrics{}
	for h := 0; h < numHists; h++ {
		m.hists[h].init(histBounds[h])
	}
	return m
}

// Add implements Recorder.
func (m *Metrics) Add(c Counter, delta int64) {
	if c >= 0 && int(c) < numCounters {
		m.counters[c].Add(delta)
	}
}

// Counter returns a counter's current value.
func (m *Metrics) Counter(c Counter) int64 {
	if c < 0 || int(c) >= numCounters {
		return 0
	}
	return m.counters[c].Load()
}

// Time implements Recorder.
func (m *Metrics) Time(p Phase, d time.Duration) {
	if p >= 0 && int(p) < numPhases {
		m.phaseNanos[p].Add(int64(d))
		m.phaseCount[p].Add(1)
	}
}

// PhaseNanos returns the nanoseconds accumulated by a phase.
func (m *Metrics) PhaseNanos(p Phase) int64 {
	if p < 0 || int(p) >= numPhases {
		return 0
	}
	return m.phaseNanos[p].Load()
}

// Observe implements Recorder.
func (m *Metrics) Observe(h Hist, v float64) {
	if h >= 0 && int(h) < numHists {
		m.hists[h].observe(v)
	}
}

// Hist returns one histogram's snapshot (with derived quantiles).
func (m *Metrics) Hist(h Hist) HistSnapshot {
	if h < 0 || int(h) >= numHists {
		return HistSnapshot{}
	}
	return m.hists[h].snapshot()
}

// Enabled implements Recorder.
func (m *Metrics) Enabled() bool { return true }

// Reset zeroes every counter, phase, and histogram.
func (m *Metrics) Reset() {
	for i := range m.counters {
		m.counters[i].Store(0)
	}
	for i := 0; i < numPhases; i++ {
		m.phaseNanos[i].Store(0)
		m.phaseCount[i].Store(0)
	}
	for h := 0; h < numHists; h++ {
		m.hists[h].reset()
	}
}

// PhaseSnapshot is one phase's accumulated wall clock.
type PhaseSnapshot struct {
	Nanos int64 `json:"ns"`
	Count int64 `json:"count"`
}

// BucketSnapshot is one histogram bucket: the count of samples ≤ the
// upper bound. The overflow bucket has UpperBound = +Inf, serialized as
// the string "+Inf".
type BucketSnapshot struct {
	UpperBound float64 `json:"-"`
	Count      int64   `json:"n"`
}

// MarshalJSON emits {"le": bound, "n": count} with "+Inf" for the
// overflow bucket (JSON has no infinity literal).
func (b BucketSnapshot) MarshalJSON() ([]byte, error) {
	type alias struct {
		Le any   `json:"le"`
		N  int64 `json:"n"`
	}
	le := any(b.UpperBound)
	if math.IsInf(b.UpperBound, 1) {
		le = "+Inf"
	}
	return json.Marshal(alias{Le: le, N: b.Count})
}

// HistSnapshot is one histogram's state. P50/P95/P99 are estimated at
// snapshot time by linear interpolation within the owning bucket — the
// standard histogram_quantile trade-off: the estimate's resolution is
// the bucket grid, not the raw samples.
type HistSnapshot struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	P50     float64          `json:"p50"`
	P95     float64          `json:"p95"`
	P99     float64          `json:"p99"`
	Buckets []BucketSnapshot `json:"buckets"`
}

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket
// counts, interpolating linearly within the bucket holding the target
// rank. A rank landing in the +Inf overflow bucket reports the highest
// finite bound — the histogram cannot see beyond its grid.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum int64
	lower := 0.0
	if len(s.Buckets) > 0 && s.Buckets[0].UpperBound < 0 {
		// Negative-bound grids would need a different floor; none of the
		// pipeline's histograms use one.
		lower = s.Buckets[0].UpperBound
	}
	for _, b := range s.Buckets {
		next := cum + b.Count
		if float64(next) >= rank && b.Count > 0 {
			if math.IsInf(b.UpperBound, 1) {
				return lower
			}
			frac := (rank - float64(cum)) / float64(b.Count)
			return lower + (b.UpperBound-lower)*frac
		}
		cum = next
		if !math.IsInf(b.UpperBound, 1) {
			lower = b.UpperBound
		}
	}
	return lower
}

// Snapshot is a consistent-enough point-in-time copy of a Metrics: each
// slot is read atomically, though the set of slots is not read under a
// global lock (a snapshot taken mid-run can be off by in-flight events,
// which is the standard expvar/Prometheus trade-off).
type Snapshot struct {
	Counters   map[string]int64         `json:"counters"`
	Phases     map[string]PhaseSnapshot `json:"phases"`
	Histograms map[string]HistSnapshot  `json:"histograms"`
}

// Snapshot copies the current state.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64, numCounters),
		Phases:     make(map[string]PhaseSnapshot, numPhases),
		Histograms: make(map[string]HistSnapshot, numHists),
	}
	for c := 0; c < numCounters; c++ {
		s.Counters[Counter(c).String()] = m.counters[c].Load()
	}
	for p := 0; p < numPhases; p++ {
		s.Phases[Phase(p).String()] = PhaseSnapshot{
			Nanos: m.phaseNanos[p].Load(),
			Count: m.phaseCount[p].Load(),
		}
	}
	for h := 0; h < numHists; h++ {
		s.Histograms[Hist(h).String()] = m.hists[h].snapshot()
	}
	return s
}

// MarshalJSON serializes the live state (expvar-style).
func (m *Metrics) MarshalJSON() ([]byte, error) {
	return json.Marshal(m.Snapshot())
}

// ---- global distance-layer gate -----------------------------------------

// The distance package sits below every pipeline layer and its hot
// functions (Levenshtein and the bounded predicate) are called from deep
// inside per-pair loops where threading a Recorder through every frame
// would distort the measurement it enables. Instead the package records
// into this process-wide sink, gated by one atomic bool so the disabled
// path costs a single atomic load.

var (
	globalEnabled atomic.Bool
	global        = NewMetrics()
)

// Global returns the process-wide metrics sink.
func Global() *Metrics { return global }

// SetGlobalEnabled turns the process-wide sink on or off. It is off by
// default so library users pay nothing; `renuver serve` turns it on.
func SetGlobalEnabled(on bool) { globalEnabled.Store(on) }

// GlobalEnabled reports whether the process-wide sink is recording.
func GlobalEnabled() bool { return globalEnabled.Load() }

// GlobalAdd increments a counter on the process-wide sink when enabled.
func GlobalAdd(c Counter, delta int64) {
	if globalEnabled.Load() {
		global.Add(c, delta)
	}
}
