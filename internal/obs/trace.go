package obs

// This file is the decision-trace layer: where metrics.go answers "how
// much work happened", the Tracer answers "which decision happened and
// why" at the granularity of a single cell. The vocabulary follows the
// paper's imputation loop: a cell's trace opens with CellStarted, walks
// the RHS-threshold clusters (RuleSelected), the ranked donors with
// their per-attribute LHS distances and Eq. 2 score (DonorConsidered),
// every IS_FAULTLESS verdict (FaultlessVerdict) with the violated RFDc
// and witness tuple on rejection (CandidateRejected), and closes with
// CellResolved or CellAbandoned. RFDc discovery emits one standalone
// RuleEmitted event per dependency.
//
// Design rules match the metrics layer: zero external dependencies, a
// no-op default, and a bounded concrete implementation (RingTracer) so
// full tracing stays safe at bench scale. A cell's events are buffered
// in a CellTrace and handed to the Tracer as one atomic, ordered batch —
// concurrent runs and parallel scan workers can therefore never
// interleave one cell's events with another's.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// EventKind enumerates the typed trace events.
type EventKind int

const (
	// EvCellStarted opens a cell's trace; N carries the cluster count.
	EvCellStarted EventKind = iota
	// EvRuleSelected records one RHS-threshold cluster being entered,
	// with the cluster threshold and its RFDcs.
	EvRuleSelected
	// EvDonorConsidered records one ranked candidate: donor row, source,
	// per-attribute LHS distances, and the Eq. 2 mean LHS distance.
	EvDonorConsidered
	// EvCandidateRejected records an IS_FAULTLESS rejection with the
	// violated RFDc and the witness tuple's row.
	EvCandidateRejected
	// EvFaultlessVerdict records one IS_FAULTLESS invocation's outcome.
	EvFaultlessVerdict
	// EvCellResolved closes a trace: the cell was imputed.
	EvCellResolved
	// EvCellAbandoned closes a trace: no candidate passed.
	EvCellAbandoned
	// EvRuleEmitted is a standalone discovery event: one RFDc entered Σ;
	// N carries its support (sampled pairs satisfying the LHS).
	EvRuleEmitted
	// EvTraceTruncated marks events elided by the per-cell budget.
	EvTraceTruncated

	numEventKinds int = iota
)

var eventKindNames = [...]string{
	EvCellStarted:       "cell_started",
	EvRuleSelected:      "rule_selected",
	EvDonorConsidered:   "donor_considered",
	EvCandidateRejected: "candidate_rejected",
	EvFaultlessVerdict:  "faultless_verdict",
	EvCellResolved:      "cell_resolved",
	EvCellAbandoned:     "cell_abandoned",
	EvRuleEmitted:       "rule_emitted",
	EvTraceTruncated:    "trace_truncated",
}

// String returns the snake_case name used in exports.
func (k EventKind) String() string {
	if k < 0 || int(k) >= numEventKinds {
		return "unknown_event"
	}
	return eventKindNames[k]
}

// MarshalJSON serializes the kind as its snake_case name.
func (k EventKind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// AttrDist is one attribute's contribution to a donor's LHS distance
// pattern.
type AttrDist struct {
	Attr int     `json:"attr"`
	Name string  `json:"name,omitempty"`
	Dist float64 `json:"dist"`
}

// TraceEvent is one step of a decision trace. Fields beyond Kind, Seq,
// Row, and Attr are meaningful only for the kinds that set them; the
// JSONL export includes only each kind's own fields.
type TraceEvent struct {
	Kind EventKind
	// Seq is the event's position within its cell's sequence (0-based).
	Seq int
	// Row and Attr address the cell (Row is -1 for standalone discovery
	// events; Attr then carries the RHS attribute).
	Row  int
	Attr int
	// UnixNano is the wall-clock stamp of CellStarted / CellResolved /
	// CellAbandoned events, zero elsewhere.
	UnixNano int64
	// Threshold is the cluster's RHS threshold (RuleSelected) or the
	// emitted dependency's RHS threshold (RuleEmitted).
	Threshold float64
	// Rules are rendered RFDcs: the cluster's members (RuleSelected), or
	// a single dependency (CandidateRejected: the violated one;
	// RuleEmitted: the discovered one).
	Rules []string
	// Donor is the candidate's row, -1 when the event concerns no donor.
	Donor int
	// Source locates the donor: -1 the target instance, 0.. the donor
	// pool of ImputeWithDonors.
	Source int
	// Dists are the donor's per-attribute LHS distances (DonorConsidered).
	Dists []AttrDist
	// Score is the Eq. 2 mean LHS distance (DonorConsidered, CellResolved).
	Score float64
	// Witness is the row of the tuple witnessing the violation
	// (CandidateRejected), -1 elsewhere.
	Witness int
	// OK is the IS_FAULTLESS outcome (FaultlessVerdict).
	OK bool
	// Value is the imputed value (CellResolved).
	Value string
	// Attempt is the 1-based rank of the candidate being tried
	// (FaultlessVerdict, CandidateRejected, CellResolved).
	Attempt int
	// N is a kind-specific count: clusters available (CellStarted),
	// support pairs (RuleEmitted), elided events (EvTraceTruncated).
	N int
	// Note carries free-text detail (abandon reason, truncation info).
	Note string
}

// MarshalJSON emits only the fields meaningful for the event's kind,
// with deterministic (alphabetical) key order, so the JSONL schema stays
// golden-testable.
func (e TraceEvent) MarshalJSON() ([]byte, error) {
	doc := map[string]any{
		"kind": e.Kind.String(),
		"seq":  e.Seq,
		"row":  e.Row,
		"attr": e.Attr,
	}
	switch e.Kind {
	case EvCellStarted:
		doc["t"] = e.UnixNano
		doc["n"] = e.N
	case EvRuleSelected:
		doc["threshold"] = e.Threshold
		doc["rules"] = e.Rules
	case EvDonorConsidered:
		doc["donor"] = e.Donor
		doc["source"] = e.Source
		doc["dists"] = e.Dists
		doc["score"] = e.Score
	case EvCandidateRejected:
		doc["donor"] = e.Donor
		doc["source"] = e.Source
		doc["attempt"] = e.Attempt
		doc["rules"] = e.Rules
		doc["witness"] = e.Witness
	case EvFaultlessVerdict:
		doc["donor"] = e.Donor
		doc["attempt"] = e.Attempt
		doc["ok"] = e.OK
	case EvCellResolved:
		doc["t"] = e.UnixNano
		doc["donor"] = e.Donor
		doc["source"] = e.Source
		doc["score"] = e.Score
		doc["value"] = e.Value
		doc["attempt"] = e.Attempt
	case EvCellAbandoned:
		doc["t"] = e.UnixNano
		doc["note"] = e.Note
	case EvRuleEmitted:
		doc["threshold"] = e.Threshold
		doc["rules"] = e.Rules
		doc["n"] = e.N
	case EvTraceTruncated:
		doc["n"] = e.N
		doc["note"] = e.Note
	}
	return json.Marshal(doc)
}

// Event constructors. Core and discovery build events through these so
// the per-kind field conventions live in one place; Row, Attr, and Seq
// are filled in by CellTrace.Add.

// CellStarted opens a cell trace over the given cluster count.
func CellStarted(clusters int) TraceEvent {
	return TraceEvent{Kind: EvCellStarted, UnixNano: time.Now().UnixNano(),
		N: clusters, Donor: -1, Source: -1, Witness: -1}
}

// RuleSelected records entering one RHS-threshold cluster.
func RuleSelected(threshold float64, rules []string) TraceEvent {
	return TraceEvent{Kind: EvRuleSelected, Threshold: threshold, Rules: rules,
		Donor: -1, Source: -1, Witness: -1}
}

// DonorConsidered records one ranked candidate with its Eq. 2 score.
func DonorConsidered(donor, source int, dists []AttrDist, score float64) TraceEvent {
	return TraceEvent{Kind: EvDonorConsidered, Donor: donor, Source: source,
		Dists: dists, Score: score, Witness: -1}
}

// CandidateRejected records an IS_FAULTLESS rejection: the violated RFDc
// and the witness tuple's row.
func CandidateRejected(donor, source, attempt int, rule string, witness int) TraceEvent {
	return TraceEvent{Kind: EvCandidateRejected, Donor: donor, Source: source,
		Attempt: attempt, Rules: []string{rule}, Witness: witness}
}

// FaultlessVerdict records one IS_FAULTLESS invocation's outcome.
func FaultlessVerdict(donor, attempt int, ok bool) TraceEvent {
	return TraceEvent{Kind: EvFaultlessVerdict, Donor: donor, Source: -1,
		Attempt: attempt, OK: ok, Witness: -1}
}

// CellResolved closes a trace with the winning imputation.
func CellResolved(donor, source int, value string, score float64, attempt int) TraceEvent {
	return TraceEvent{Kind: EvCellResolved, UnixNano: time.Now().UnixNano(),
		Donor: donor, Source: source, Value: value, Score: score, Attempt: attempt, Witness: -1}
}

// CellAbandoned closes a trace without an imputation.
func CellAbandoned(note string) TraceEvent {
	return TraceEvent{Kind: EvCellAbandoned, UnixNano: time.Now().UnixNano(),
		Note: note, Donor: -1, Source: -1, Witness: -1}
}

// RuleEmitted is the standalone discovery event: one RFDc entered Σ with
// the given support (sampled pairs satisfying its LHS).
func RuleEmitted(rhsAttr int, rule string, threshold float64, support int) TraceEvent {
	return TraceEvent{Kind: EvRuleEmitted, Row: -1, Attr: rhsAttr,
		Rules: []string{rule}, Threshold: threshold, N: support,
		Donor: -1, Source: -1, Witness: -1}
}

// TraceTruncated marks n elided events.
func TraceTruncated(n int, note string) TraceEvent {
	return TraceEvent{Kind: EvTraceTruncated, N: n, Note: note,
		Donor: -1, Source: -1, Witness: -1}
}

// Tracer receives decision traces. Implementations must be safe for
// concurrent use: parallel Impute runs deliver completed cell traces
// from their own goroutines.
type Tracer interface {
	// Enabled reports whether tracing has any effect; callers skip event
	// construction entirely when false.
	Enabled() bool
	// Sample decides whether the cell should be traced. It must be
	// deterministic for a (row, attr) pair within one run.
	Sample(row, attr int) bool
	// EmitCell receives one cell's complete event sequence, already
	// ordered by Seq. The implementation must not mutate the slice.
	EmitCell(events []TraceEvent)
	// EmitEvent receives a standalone event (discovery's RuleEmitted).
	EmitEvent(ev TraceEvent)
}

// NopTracer is the disabled Tracer.
type NopTracer struct{}

// Enabled implements Tracer.
func (NopTracer) Enabled() bool { return false }

// Sample implements Tracer.
func (NopTracer) Sample(int, int) bool { return false }

// EmitCell implements Tracer.
func (NopTracer) EmitCell([]TraceEvent) {}

// EmitEvent implements Tracer.
func (NopTracer) EmitEvent(TraceEvent) {}

// maxEventsPerCell bounds one cell's trace; a pathological cell (huge
// candidate lists, many rejections) cannot blow up memory. Terminal
// events are exempt so every trace still ends well-formed.
const maxEventsPerCell = 4096

// CellTrace buffers one cell's events and delivers them to the Tracer as
// one atomic batch on Close. A nil *CellTrace is valid and inert, so the
// hot path can thread it unconditionally. CellTrace is not safe for
// concurrent use — parallel scan workers collect locally and the merged,
// deterministic order is appended by the coordinating goroutine.
type CellTrace struct {
	sink      Tracer
	row, attr int
	events    []TraceEvent
	dropped   int
}

// StartCell opens a collector for the cell, or returns nil when the
// tracer is off or the cell is not sampled.
func StartCell(t Tracer, row, attr int) *CellTrace {
	if t == nil || !t.Enabled() || !t.Sample(row, attr) {
		return nil
	}
	return &CellTrace{sink: t, row: row, attr: attr}
}

// terminalKind reports whether the kind closes a trace.
func terminalKind(k EventKind) bool { return k == EvCellResolved || k == EvCellAbandoned }

// Add appends one event, stamping its Seq, Row, and Attr. Safe on nil.
func (ct *CellTrace) Add(ev TraceEvent) {
	if ct == nil {
		return
	}
	if len(ct.events) >= maxEventsPerCell && !terminalKind(ev.Kind) {
		ct.dropped++
		return
	}
	if ct.dropped > 0 && terminalKind(ev.Kind) {
		marker := TraceTruncated(ct.dropped, "per-cell event budget exhausted")
		marker.Seq, marker.Row, marker.Attr = len(ct.events), ct.row, ct.attr
		ct.events = append(ct.events, marker)
	}
	ev.Seq, ev.Row, ev.Attr = len(ct.events), ct.row, ct.attr
	ct.events = append(ct.events, ev)
}

// Close delivers the buffered sequence to the tracer and returns it.
// Safe on nil (returns nil).
func (ct *CellTrace) Close() []TraceEvent {
	if ct == nil {
		return nil
	}
	ct.sink.EmitCell(ct.events)
	return ct.events
}

// RingTracer is the concrete Tracer: a bounded ring of completed cell
// traces with deterministic 1-in-n cell sampling. When the ring is full
// the oldest trace is evicted, so a long-lived server always holds the
// most recent decisions. All methods are safe for concurrent use.
type RingTracer struct {
	mu       sync.Mutex
	cells    [][]TraceEvent
	start    int // index of the oldest entry
	count    int
	sample   int
	only     bool
	onlyCell [2]int
	evicted  uint64
}

// DefaultTraceCells is the ring capacity when NewRingTracer gets <= 0.
const DefaultTraceCells = 256

// NewRingTracer returns a tracer retaining up to capacity cell traces
// (<= 0 means DefaultTraceCells), sampling one cell in `sample`
// (<= 1 traces every cell).
func NewRingTracer(capacity, sample int) *RingTracer {
	if capacity <= 0 {
		capacity = DefaultTraceCells
	}
	if sample < 1 {
		sample = 1
	}
	return &RingTracer{cells: make([][]TraceEvent, capacity), sample: sample}
}

// Only restricts sampling to a single cell — the `renuver explain` mode,
// where tracing any other cell is wasted work.
func (t *RingTracer) Only(row, attr int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.only = true
	t.onlyCell = [2]int{row, attr}
}

// Enabled implements Tracer.
func (t *RingTracer) Enabled() bool { return true }

// Sample implements Tracer: deterministic per (row, attr), so repeated
// runs trace the same cells.
func (t *RingTracer) Sample(row, attr int) bool {
	t.mu.Lock()
	only, cell, sample := t.only, t.onlyCell, t.sample
	t.mu.Unlock()
	if only {
		return row == cell[0] && attr == cell[1]
	}
	if sample <= 1 {
		return true
	}
	h := uint64(row)*0x9E3779B97F4A7C15 + uint64(attr)*0x85EBCA77C2B2AE63
	h ^= h >> 33
	return h%uint64(sample) == 0
}

// EmitCell implements Tracer.
func (t *RingTracer) EmitCell(events []TraceEvent) {
	if len(events) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.count < len(t.cells) {
		t.cells[(t.start+t.count)%len(t.cells)] = events
		t.count++
		return
	}
	t.cells[t.start] = events
	t.start = (t.start + 1) % len(t.cells)
	t.evicted++
}

// EmitEvent implements Tracer: a standalone event is stored as its own
// single-event sequence.
func (t *RingTracer) EmitEvent(ev TraceEvent) {
	t.EmitCell([]TraceEvent{ev})
}

// Len returns the number of retained traces.
func (t *RingTracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

// Evicted returns how many traces the ring has dropped.
func (t *RingTracer) Evicted() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evicted
}

// Last returns the most recently completed trace, nil when empty.
func (t *RingTracer) Last() []TraceEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.count == 0 {
		return nil
	}
	return t.cells[(t.start+t.count-1)%len(t.cells)]
}

// Cells returns the retained traces, oldest first.
func (t *RingTracer) Cells() [][]TraceEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([][]TraceEvent, 0, t.count)
	for i := 0; i < t.count; i++ {
		out = append(out, t.cells[(t.start+i)%len(t.cells)])
	}
	return out
}

// Reset drops every retained trace.
func (t *RingTracer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.cells {
		t.cells[i] = nil
	}
	t.start, t.count, t.evicted = 0, 0, 0
}

// WriteJSONL exports every retained trace, oldest cell first, one event
// per line.
func (t *RingTracer) WriteJSONL(w io.Writer) error {
	for _, cell := range t.Cells() {
		for _, ev := range cell {
			doc, err := json.Marshal(ev)
			if err != nil {
				return err
			}
			if _, err := w.Write(append(doc, '\n')); err != nil {
				return err
			}
		}
	}
	return nil
}

// TraceHandler serves the most recent trace as a JSON array — the
// `/trace/last` endpoint of `renuver serve`. A nil tracer yields 404s so
// the endpoint can be mounted unconditionally.
func TraceHandler(t *RingTracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if t == nil {
			http.Error(w, "tracing disabled; restart with -trace-sample", http.StatusNotFound)
			return
		}
		last := t.Last()
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if last == nil {
			fmt.Fprintln(w, "[]")
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(last)
	})
}
