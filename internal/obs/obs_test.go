package obs

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAddAndSnapshot(t *testing.T) {
	m := NewMetrics()
	m.Add(CtrCandidatesEvaluated, 3)
	m.Add(CtrCandidatesEvaluated, 4)
	m.Add(CtrFaultlessChecks, 1)
	if got := m.Counter(CtrCandidatesEvaluated); got != 7 {
		t.Fatalf("counter = %d, want 7", got)
	}
	m.Add(CtrEngineCacheHits, 9)
	m.Add(CtrEngineCacheMisses, 4)
	m.Add(CtrEngineIndexProbes, 2)
	s := m.Snapshot()
	if s.Counters["candidates_evaluated"] != 7 || s.Counters["faultless_checks"] != 1 {
		t.Fatalf("snapshot counters = %v", s.Counters)
	}
	// The engine counters flow into the snapshot under their wire names.
	if s.Counters["engine_cache_hits"] != 9 ||
		s.Counters["engine_cache_misses"] != 4 ||
		s.Counters["engine_index_probes"] != 2 {
		t.Fatalf("snapshot engine counters = %v", s.Counters)
	}
	// Every counter name must be present, even untouched ones.
	if len(s.Counters) != numCounters {
		t.Fatalf("snapshot has %d counters, want %d", len(s.Counters), numCounters)
	}
}

func TestOutOfRangeSlotsAreIgnored(t *testing.T) {
	m := NewMetrics()
	m.Add(Counter(-1), 5)
	m.Add(Counter(numCounters), 5)
	m.Observe(Hist(-1), 1)
	m.Time(Phase(numPhases), time.Second)
	s := m.Snapshot()
	for name, v := range s.Counters {
		if v != 0 {
			t.Fatalf("counter %s = %d after out-of-range ops", name, v)
		}
	}
	if Counter(-1).String() != "unknown_counter" ||
		Phase(numPhases).String() != "unknown_phase" ||
		Hist(numHists).String() != "unknown_hist" {
		t.Fatal("out-of-range names not sanitized")
	}
}

func TestHistogramBucketing(t *testing.T) {
	m := NewMetrics()
	// Bounds for attempts: {1, 2, 3, 5, 10, 20, 50}.
	for _, v := range []float64{1, 1, 2, 4, 51, 1e9} {
		m.Observe(HistAttemptsPerImputation, v)
	}
	s := m.Snapshot().Histograms["attempts_per_imputation"]
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if want := 1 + 1 + 2 + 4 + 51 + 1e9; s.Sum != want {
		t.Fatalf("sum = %v, want %v", s.Sum, want)
	}
	// v=1 twice in the le=1 bucket, v=2 in le=2, v=4 in le=5, v=51 and
	// 1e9 in the +Inf overflow.
	counts := map[float64]int64{}
	for _, b := range s.Buckets {
		counts[b.UpperBound] = b.Count
	}
	if counts[1] != 2 || counts[2] != 1 || counts[5] != 1 || counts[math.Inf(1)] != 2 {
		t.Fatalf("bucket counts = %+v", s.Buckets)
	}
}

func TestPhaseAccounting(t *testing.T) {
	m := NewMetrics()
	m.Time(PhaseVerify, 5*time.Millisecond)
	m.Time(PhaseVerify, 7*time.Millisecond)
	if got := m.PhaseNanos(PhaseVerify); got != int64(12*time.Millisecond) {
		t.Fatalf("verify ns = %d", got)
	}
	s := m.Snapshot().Phases["verify"]
	if s.Count != 2 || s.Nanos != int64(12*time.Millisecond) {
		t.Fatalf("phase snapshot = %+v", s)
	}
}

func TestSinceAndNowSkipDisabledClock(t *testing.T) {
	if !Now(Nop{}).IsZero() {
		t.Fatal("Now(Nop) read the clock")
	}
	if Now(nil) != (time.Time{}) {
		t.Fatal("Now(nil) read the clock")
	}
	Since(nil, PhaseTotal, time.Now())   // must not panic
	Since(Nop{}, PhaseTotal, time.Now()) // must not panic
	m := NewMetrics()
	if Now(m).IsZero() {
		t.Fatal("Now(Metrics) returned zero")
	}
	Since(m, PhaseTotal, time.Now().Add(-time.Millisecond))
	if m.PhaseNanos(PhaseTotal) < int64(time.Millisecond) {
		t.Fatalf("Since recorded %d ns", m.PhaseNanos(PhaseTotal))
	}
}

func TestConcurrentRecording(t *testing.T) {
	m := NewMetrics()
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Add(CtrDonorsScanned, 1)
				m.Observe(HistCandidatesPerCell, float64(i%7))
				m.Time(PhaseCandidateSearch, time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if got := m.Counter(CtrDonorsScanned); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	h := m.Snapshot().Histograms["candidates_per_cell"]
	if h.Count != workers*per {
		t.Fatalf("hist count = %d, want %d", h.Count, workers*per)
	}
	var bucketSum int64
	for _, b := range h.Buckets {
		bucketSum += b.Count
	}
	if bucketSum != h.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, h.Count)
	}
}

func TestResetZeroesEverything(t *testing.T) {
	m := NewMetrics()
	m.Add(CtrImputations, 9)
	m.Observe(HistImputeMicros, 500)
	m.Time(PhaseTotal, time.Second)
	m.Reset()
	s := m.Snapshot()
	if s.Counters["imputations"] != 0 ||
		s.Phases["total"].Nanos != 0 ||
		s.Histograms["impute_micros"].Count != 0 ||
		s.Histograms["impute_micros"].Sum != 0 {
		t.Fatalf("reset left state behind: %+v", s)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	m := NewMetrics()
	m.Add(CtrLevenshteinCalls, 42)
	m.Observe(HistCandidatesPerCell, 3)
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters   map[string]int64 `json:"counters"`
		Histograms map[string]struct {
			Count   int64 `json:"count"`
			Buckets []struct {
				Le any   `json:"le"`
				N  int64 `json:"n"`
			} `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("snapshot JSON not parseable: %v\n%s", err, raw)
	}
	if doc.Counters["levenshtein_calls"] != 42 {
		t.Fatalf("counters = %v", doc.Counters)
	}
	bs := doc.Histograms["candidates_per_cell"].Buckets
	if len(bs) == 0 || bs[len(bs)-1].Le != "+Inf" {
		t.Fatalf("overflow bucket not serialized as +Inf: %v", bs)
	}
}

func TestHandlerServesSnapshot(t *testing.T) {
	m := NewMetrics()
	m.Add(CtrImputations, 5)
	srv := httptest.NewServer(Handler(m))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("content type = %q", ct)
	}
	var s struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["imputations"] != 5 {
		t.Fatalf("served counters = %v", s.Counters)
	}
}

func TestMountDebugPprof(t *testing.T) {
	mux := http.NewServeMux()
	MountDebug(mux)
	req := httptest.NewRequest("GET", "/debug/pprof/", nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("pprof index status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "goroutine") {
		t.Fatal("pprof index does not list profiles")
	}
}

func TestGlobalGate(t *testing.T) {
	Global().Reset()
	SetGlobalEnabled(false)
	GlobalAdd(CtrLevenshteinCalls, 1)
	if got := Global().Counter(CtrLevenshteinCalls); got != 0 {
		t.Fatalf("disabled global recorded %d", got)
	}
	SetGlobalEnabled(true)
	defer SetGlobalEnabled(false)
	GlobalAdd(CtrLevenshteinCalls, 2)
	if got := Global().Counter(CtrLevenshteinCalls); got != 2 {
		t.Fatalf("enabled global = %d, want 2", got)
	}
}

func TestNopIsFree(t *testing.T) {
	var r Recorder = Nop{}
	if r.Enabled() {
		t.Fatal("Nop claims enabled")
	}
	r.Add(CtrImputations, 1)
	r.Observe(HistCandidatesPerCell, 1)
	r.Time(PhaseTotal, time.Second)
	if n := testing.AllocsPerRun(100, func() {
		r.Add(CtrImputations, 1)
	}); n != 0 {
		t.Fatalf("Nop.Add allocates %v per run", n)
	}
}
