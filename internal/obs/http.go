package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strings"
)

// Handler serves the metrics. The default representation is the JSON
// snapshot (expvar-style, pretty-printed); a client whose Accept header
// asks for text/plain — the Prometheus scraper convention — gets the
// text exposition format instead.
func Handler(m *Metrics) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if acceptsPrometheus(r.Header.Get("Accept")) {
			w.Header().Set("Content-Type", PrometheusContentType)
			_ = m.WritePrometheus(w)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(m.Snapshot())
	})
}

// acceptsPrometheus reports whether the Accept header prefers the text
// exposition format over JSON. JSON stays the default: only an explicit
// text/plain (or OpenMetrics) ask flips the representation.
func acceptsPrometheus(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mediaType := strings.TrimSpace(strings.SplitN(part, ";", 2)[0])
		switch mediaType {
		case "application/json":
			return false
		case "text/plain", "application/openmetrics-text":
			return true
		}
	}
	return false
}

// MountDebug attaches the net/http/pprof handlers to the mux under
// /debug/pprof/, without touching http.DefaultServeMux (the serve mode
// builds its own mux so tests can run many instances side by side).
func MountDebug(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
