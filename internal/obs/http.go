package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// Handler serves the metrics as a JSON snapshot (expvar-style: one
// document, pretty-printed, no content negotiation).
func Handler(m *Metrics) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(m.Snapshot())
	})
}

// MountDebug attaches the net/http/pprof handlers to the mux under
// /debug/pprof/, without touching http.DefaultServeMux (the serve mode
// builds its own mux so tests can run many instances side by side).
func MountDebug(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
