// Package dc implements denial constraints (DCs) — the metadata class the
// Holoclean baseline consumes (Rekatsinas et al. [20] take DCs as input;
// the paper obtained them with automatic discovery [2, 9]).
//
// A DC forbids a conjunction of predicates over a tuple pair:
//
//	¬( t1.A1 op1 t2.A1 ∧ t1.A2 op2 t2.A2 ∧ ... )
//
// A pair making every predicate true is a violation witness. Predicates
// over missing values are unsatisfiable, so incomplete cells never
// witness a violation.
package dc

import (
	"fmt"
	"strings"

	"repro/internal/dataset"
)

// Op is a comparison operator between the two tuples' values on one
// attribute.
type Op uint8

// Supported operators. Order operators apply to numeric attributes only.
const (
	Eq Op = iota
	Neq
	Lt
	Leq
	Gt
	Geq
)

var opNames = [...]string{"=", "!=", "<", "<=", ">", ">="}

// String returns the operator's symbol.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// ParseOp reads an operator symbol.
func ParseOp(s string) (Op, error) {
	for i, name := range opNames {
		if s == name {
			return Op(i), nil
		}
	}
	return 0, fmt.Errorf("dc: unknown operator %q", s)
}

// Predicate compares t1[Attr] against t2[Attr] with Op.
type Predicate struct {
	Attr int
	Op   Op
}

// eval reports whether the predicate holds for the pair. Missing values
// make every predicate false.
func (p Predicate) eval(t1, t2 dataset.Tuple) bool {
	a, b := t1[p.Attr], t2[p.Attr]
	if a.IsNull() || b.IsNull() {
		return false
	}
	switch p.Op {
	case Eq:
		return a.Equal(b)
	case Neq:
		return !a.Equal(b)
	}
	// Order comparisons require numeric kinds.
	if !a.Kind().Numeric() || !b.Kind().Numeric() {
		return false
	}
	switch p.Op {
	case Lt:
		return a.Float() < b.Float()
	case Leq:
		return a.Float() <= b.Float()
	case Gt:
		return a.Float() > b.Float()
	case Geq:
		return a.Float() >= b.Float()
	default:
		return false
	}
}

// DC is one denial constraint: the negated conjunction of its predicates.
type DC struct {
	Preds []Predicate
}

// New builds a DC, rejecting empty or duplicate-attribute predicate
// lists.
func New(preds ...Predicate) (*DC, error) {
	if len(preds) == 0 {
		return nil, fmt.Errorf("dc: empty predicate list")
	}
	seen := map[int]bool{}
	for _, p := range preds {
		if seen[p.Attr] {
			return nil, fmt.Errorf("dc: duplicate attribute %d", p.Attr)
		}
		seen[p.Attr] = true
	}
	return &DC{Preds: append([]Predicate(nil), preds...)}, nil
}

// MustNew is New that panics on error.
func MustNew(preds ...Predicate) *DC {
	d, err := New(preds...)
	if err != nil {
		panic(err)
	}
	return d
}

// WitnessedBy reports whether the ordered pair (t1, t2) makes every
// predicate true — i.e. violates the constraint.
func (d *DC) WitnessedBy(t1, t2 dataset.Tuple) bool {
	for _, p := range d.Preds {
		if !p.eval(t1, t2) {
			return false
		}
	}
	return true
}

// Violations counts the ordered tuple pairs witnessing a violation.
func (d *DC) Violations(rel *dataset.Relation) int {
	n, count := rel.Len(), 0
	for i := 0; i < n; i++ {
		ti := rel.Row(i)
		for j := 0; j < n; j++ {
			if i != j && d.WitnessedBy(ti, rel.Row(j)) {
				count++
			}
		}
	}
	return count
}

// HoldsOn reports whether no pair witnesses a violation.
func (d *DC) HoldsOn(rel *dataset.Relation) bool {
	n := rel.Len()
	for i := 0; i < n; i++ {
		ti := rel.Row(i)
		for j := 0; j < n; j++ {
			if i != j && d.WitnessedBy(ti, rel.Row(j)) {
				return false
			}
		}
	}
	return true
}

// ViolationsInvolving counts the violations in which the given row takes
// part (as either side). The Holoclean baseline uses this as a repair
// feature.
func (d *DC) ViolationsInvolving(rel *dataset.Relation, row int) int {
	n, count := rel.Len(), 0
	t := rel.Row(row)
	for j := 0; j < n; j++ {
		if j == row {
			continue
		}
		tj := rel.Row(j)
		if d.WitnessedBy(t, tj) {
			count++
		}
		if d.WitnessedBy(tj, t) {
			count++
		}
	}
	return count
}

// InvolvesAttr reports whether the DC constrains the attribute.
func (d *DC) InvolvesAttr(attr int) bool {
	for _, p := range d.Preds {
		if p.Attr == attr {
			return true
		}
	}
	return false
}

// Format renders the DC as "!(A = & B != & C >)" with attribute names.
func (d *DC) Format(schema *dataset.Schema) string {
	parts := make([]string, len(d.Preds))
	for i, p := range d.Preds {
		parts[i] = schema.Attr(p.Attr).Name + " " + p.Op.String()
	}
	return "!(" + strings.Join(parts, " & ") + ")"
}

// Parse reads a DC in Format form.
func Parse(s string, schema *dataset.Schema) (*DC, error) {
	body := strings.TrimSpace(s)
	if !strings.HasPrefix(body, "!(") || !strings.HasSuffix(body, ")") {
		return nil, fmt.Errorf("dc: %q: want !(...)", s)
	}
	body = body[2 : len(body)-1]
	var preds []Predicate
	for _, part := range strings.Split(body, "&") {
		fields := strings.Fields(part)
		if len(fields) != 2 {
			return nil, fmt.Errorf("dc: bad predicate %q", part)
		}
		attr, ok := schema.Index(fields[0])
		if !ok {
			return nil, fmt.Errorf("dc: unknown attribute %q", fields[0])
		}
		op, err := ParseOp(fields[1])
		if err != nil {
			return nil, err
		}
		preds = append(preds, Predicate{Attr: attr, Op: op})
	}
	return New(preds...)
}
