package dc

import (
	"testing"

	"repro/internal/dataset"
)

// FuzzParseDC: arbitrary input never panics; accepted inputs round-trip
// through Format.
func FuzzParseDC(f *testing.F) {
	seeds := []string{
		"!(Zip = & City !=)",
		"!(Salary > & Tax <)",
		"!(Zip =)",
		"",
		"!(Zip ~)",
		"!(Bogus =)",
		"!(Zip = & Zip !=)",
		"Zip =",
		"!()",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	schema := dataset.NewSchema(
		dataset.Attribute{Name: "Zip", Kind: dataset.KindInt},
		dataset.Attribute{Name: "City", Kind: dataset.KindString},
		dataset.Attribute{Name: "Salary", Kind: dataset.KindFloat},
		dataset.Attribute{Name: "Tax", Kind: dataset.KindFloat},
	)
	f.Fuzz(func(t *testing.T, input string) {
		d, err := Parse(input, schema)
		if err != nil {
			return
		}
		text := d.Format(schema)
		back, err := Parse(text, schema)
		if err != nil {
			t.Fatalf("Format output %q does not re-parse: %v", text, err)
		}
		if len(back.Preds) != len(d.Preds) {
			t.Fatalf("round trip changed predicate count: %q", text)
		}
		for i := range d.Preds {
			if back.Preds[i] != d.Preds[i] {
				t.Fatalf("round trip changed predicate %d: %q", i, text)
			}
		}
	})
}
