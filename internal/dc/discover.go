package dc

import (
	"math/rand"
	"sort"

	"repro/internal/dataset"
)

// DiscoverConfig tunes DC discovery.
type DiscoverConfig struct {
	// MaxViolationRate tolerates approximate DCs: a candidate is kept if
	// the fraction of sampled ordered pairs violating it is at most this
	// value. Zero means exact DCs only.
	MaxViolationRate float64
	// MinEvidence requires at least this many sampled pairs to satisfy
	// the candidate's first predicate (so vacuous constraints are
	// dropped). Zero means 1.
	MinEvidence int
	// MaxPairs caps the sampled ordered pairs. Zero means all.
	MaxPairs int
	// Seed drives sampling.
	Seed int64
}

// Discover finds two-predicate denial constraints in the spirit of the
// FastDC/Hydra predicate-space search [2, 9], restricted to the two
// families that matter for repair features:
//
//   - FD-shaped: ¬(t1.A = t2.A ∧ t1.B ≠ t2.B) — equal on A forces equal
//     on B;
//   - order-compatibility: ¬(t1.A > t2.A ∧ t1.B < t2.B) — A and B sort
//     the same way (numeric attributes only).
//
// Candidates are validated on (a sample of) ordered tuple pairs and kept
// when their violation rate is within MaxViolationRate.
func Discover(rel *dataset.Relation, cfg DiscoverConfig) []*DC {
	if cfg.MinEvidence == 0 {
		cfg.MinEvidence = 1
	}
	m := rel.Schema().Len()
	if m < 2 || rel.Len() < 2 {
		return nil
	}
	pairs := samplePairs(rel.Len(), cfg.MaxPairs, cfg.Seed)

	var out []*DC
	for a := 0; a < m; a++ {
		for b := 0; b < m; b++ {
			if a == b {
				continue
			}
			// FD-shaped candidate (directional; evaluate a -> b).
			fd := MustNew(Predicate{Attr: a, Op: Eq}, Predicate{Attr: b, Op: Neq})
			if acceptable(rel, fd, pairs, cfg) {
				out = append(out, fd)
			}
			// Order compatibility: only once per unordered numeric pair.
			if a < b && rel.Schema().Attr(a).Kind.Numeric() && rel.Schema().Attr(b).Kind.Numeric() {
				oc := MustNew(Predicate{Attr: a, Op: Gt}, Predicate{Attr: b, Op: Lt})
				if acceptable(rel, oc, pairs, cfg) {
					out = append(out, oc)
				}
			}
		}
	}
	return out
}

// acceptable validates one candidate over the sampled ordered pairs.
func acceptable(rel *dataset.Relation, d *DC, pairs [][2]int, cfg DiscoverConfig) bool {
	violations, evidence := 0, 0
	first := d.Preds[0]
	for _, pr := range pairs {
		t1, t2 := rel.Row(pr[0]), rel.Row(pr[1])
		if first.eval(t1, t2) {
			evidence++
		}
		if d.WitnessedBy(t1, t2) {
			violations++
		}
	}
	if evidence < cfg.MinEvidence {
		return false
	}
	rate := float64(violations) / float64(len(pairs))
	return rate <= cfg.MaxViolationRate
}

// samplePairs returns ordered pairs (i, j), i != j — all of them, or a
// deterministic uniform sample of maxPairs.
func samplePairs(n, maxPairs int, seed int64) [][2]int {
	total := n * (n - 1)
	if maxPairs <= 0 || maxPairs >= total {
		out := make([][2]int, 0, total)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					out = append(out, [2]int{i, j})
				}
			}
		}
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[[2]int]bool, maxPairs)
	out := make([][2]int, 0, maxPairs)
	for len(out) < maxPairs {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		key := [2]int{i, j}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, key)
	}
	sort.Slice(out, func(x, y int) bool {
		if out[x][0] != out[y][0] {
			return out[x][0] < out[y][0]
		}
		return out[x][1] < out[y][1]
	})
	return out
}
