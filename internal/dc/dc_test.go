package dc

import (
	"testing"

	"repro/internal/dataset"
)

func sample(t testing.TB) *dataset.Relation {
	t.Helper()
	rel, err := dataset.ReadCSVString(`Zip,City,Salary,Tax
10001,NYC,100,30
10001,NYC,200,60
90210,LA,150,40
90210,LA,50,10
10001,,80,
`)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func TestPredicateEval(t *testing.T) {
	rel := sample(t)
	t0, t1, t4 := rel.Row(0), rel.Row(1), rel.Row(4)
	cases := []struct {
		name string
		p    Predicate
		a, b dataset.Tuple
		want bool
	}{
		{"eq true", Predicate{Attr: 0, Op: Eq}, t0, t1, true},
		{"eq false", Predicate{Attr: 2, Op: Eq}, t0, t1, false},
		{"neq", Predicate{Attr: 2, Op: Neq}, t0, t1, true},
		{"lt", Predicate{Attr: 2, Op: Lt}, t0, t1, true},
		{"lt false", Predicate{Attr: 2, Op: Lt}, t1, t0, false},
		{"gt", Predicate{Attr: 2, Op: Gt}, t1, t0, true},
		{"leq equal", Predicate{Attr: 0, Op: Leq}, t0, t1, true},
		{"geq equal", Predicate{Attr: 0, Op: Geq}, t0, t1, true},
		{"null never true", Predicate{Attr: 1, Op: Eq}, t0, t4, false},
		{"null never neq", Predicate{Attr: 1, Op: Neq}, t0, t4, false},
		{"order on strings false", Predicate{Attr: 1, Op: Lt}, t0, t1, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.p.eval(c.a, c.b); got != c.want {
				t.Errorf("eval = %v, want %v", got, c.want)
			}
		})
	}
}

func TestDCHoldsAndViolations(t *testing.T) {
	rel := sample(t)
	schema := rel.Schema()
	// Zip = -> City != : holds (equal zips always share city or null).
	zipCity := MustNew(Predicate{Attr: 0, Op: Eq}, Predicate{Attr: 1, Op: Neq})
	if !zipCity.HoldsOn(rel) {
		t.Errorf("%s should hold", zipCity.Format(schema))
	}
	if got := zipCity.Violations(rel); got != 0 {
		t.Errorf("violations = %d", got)
	}
	// Salary > & Tax < : violated by rows 2,3? (150,40) vs (50,10):
	// 150>50 and 40<10 false. Check (0,2): 100>150 false. (1,2): 200>150,
	// 60<40 false. Actually rows 0 vs 3: 100>50, 30<10 false. Construct a
	// real violation: rows 1 and 2: 200>150 and 60<40? no. So it holds.
	oc := MustNew(Predicate{Attr: 2, Op: Gt}, Predicate{Attr: 3, Op: Lt})
	if !oc.HoldsOn(rel) {
		t.Errorf("%s should hold on monotone salary/tax", oc.Format(schema))
	}
	// City = -> Salary != would be witnessed by same-city rows with
	// different salaries.
	cs := MustNew(Predicate{Attr: 1, Op: Eq}, Predicate{Attr: 2, Op: Neq})
	if cs.HoldsOn(rel) {
		t.Errorf("%s should be violated", cs.Format(schema))
	}
	if got := cs.Violations(rel); got != 4 { // (0,1),(1,0),(2,3),(3,2)
		t.Errorf("violations = %d, want 4", got)
	}
}

func TestViolationsInvolving(t *testing.T) {
	rel := sample(t)
	cs := MustNew(Predicate{Attr: 1, Op: Eq}, Predicate{Attr: 2, Op: Neq})
	if got := cs.ViolationsInvolving(rel, 0); got != 2 { // (0,1) and (1,0)
		t.Errorf("ViolationsInvolving(0) = %d, want 2", got)
	}
	if got := cs.ViolationsInvolving(rel, 4); got != 0 {
		t.Errorf("ViolationsInvolving(4) = %d, want 0 (null city)", got)
	}
}

func TestDCNewValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("empty DC accepted")
	}
	if _, err := New(Predicate{Attr: 1, Op: Eq}, Predicate{Attr: 1, Op: Neq}); err == nil {
		t.Error("duplicate attribute accepted")
	}
}

func TestDCFormatParseRoundTrip(t *testing.T) {
	rel := sample(t)
	schema := rel.Schema()
	d := MustNew(Predicate{Attr: 0, Op: Eq}, Predicate{Attr: 2, Op: Gt}, Predicate{Attr: 3, Op: Lt})
	text := d.Format(schema)
	if text != "!(Zip = & Salary > & Tax <)" {
		t.Errorf("Format = %q", text)
	}
	back, err := Parse(text, schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Preds) != 3 || back.Preds[1] != d.Preds[1] {
		t.Errorf("round trip changed DC: %+v", back)
	}
}

func TestDCParseErrors(t *testing.T) {
	rel := sample(t)
	for _, s := range []string{"", "Zip =", "!(Zip)", "!(Bogus =)", "!(Zip ~)"} {
		if _, err := Parse(s, rel.Schema()); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}

func TestInvolvesAttr(t *testing.T) {
	d := MustNew(Predicate{Attr: 0, Op: Eq}, Predicate{Attr: 2, Op: Neq})
	if !d.InvolvesAttr(0) || !d.InvolvesAttr(2) || d.InvolvesAttr(1) {
		t.Error("InvolvesAttr wrong")
	}
}

func TestOpParse(t *testing.T) {
	for _, s := range []string{"=", "!=", "<", "<=", ">", ">="} {
		op, err := ParseOp(s)
		if err != nil {
			t.Fatal(err)
		}
		if op.String() != s {
			t.Errorf("round trip %q -> %q", s, op.String())
		}
	}
	if _, err := ParseOp("~"); err == nil {
		t.Error("bad op accepted")
	}
	if Op(42).String() != "op(42)" {
		t.Error("unknown op String")
	}
}

func TestDiscoverFindsFDShapedDC(t *testing.T) {
	rel := sample(t)
	dcs := Discover(rel, DiscoverConfig{})
	foundZipCity := false
	for _, d := range dcs {
		if d.Format(rel.Schema()) == "!(Zip = & City !=)" {
			foundZipCity = true
		}
		if !d.HoldsOn(rel) {
			t.Errorf("discovered DC %s violated", d.Format(rel.Schema()))
		}
	}
	if !foundZipCity {
		t.Error("Zip->City FD-shaped DC not discovered")
	}
}

func TestDiscoverOrderCompatibility(t *testing.T) {
	rel, err := dataset.ReadCSVString(`X,Y
1,10
2,20
3,30
4,40
`)
	if err != nil {
		t.Fatal(err)
	}
	dcs := Discover(rel, DiscoverConfig{})
	found := false
	for _, d := range dcs {
		if d.Format(rel.Schema()) == "!(X > & Y <)" {
			found = true
		}
	}
	if !found {
		t.Error("order-compatibility DC not discovered on monotone data")
	}
}

func TestDiscoverToleratesNoise(t *testing.T) {
	rel, err := dataset.ReadCSVString(`A,B
x,1
x,1
x,1
x,1
x,2
y,3
`)
	if err != nil {
		t.Fatal(err)
	}
	exact := Discover(rel, DiscoverConfig{})
	for _, d := range exact {
		if d.Format(rel.Schema()) == "!(A = & B !=)" {
			t.Error("exact discovery kept a violated DC")
		}
	}
	noisy := Discover(rel, DiscoverConfig{MaxViolationRate: 0.5})
	found := false
	for _, d := range noisy {
		if d.Format(rel.Schema()) == "!(A = & B !=)" {
			found = true
		}
	}
	if !found {
		t.Error("tolerant discovery dropped the approximate DC")
	}
}

func TestDiscoverEdgeCases(t *testing.T) {
	one, err := dataset.ReadCSVString("A\nx\ny\n")
	if err != nil {
		t.Fatal(err)
	}
	if got := Discover(one, DiscoverConfig{}); len(got) != 0 {
		t.Errorf("single attribute produced %d DCs", len(got))
	}
	single, err := dataset.ReadCSVString("A,B\nx,1\n")
	if err != nil {
		t.Fatal(err)
	}
	if got := Discover(single, DiscoverConfig{}); len(got) != 0 {
		t.Errorf("single tuple produced %d DCs", len(got))
	}
}

func TestDiscoverSamplingDeterminism(t *testing.T) {
	rel := sample(t)
	a := Discover(rel, DiscoverConfig{MaxPairs: 8, Seed: 3})
	b := Discover(rel, DiscoverConfig{MaxPairs: 8, Seed: 3})
	if len(a) != len(b) {
		t.Fatalf("nondeterministic sampled discovery: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Format(rel.Schema()) != b[i].Format(rel.Schema()) {
			t.Errorf("DC %d differs", i)
		}
	}
}
