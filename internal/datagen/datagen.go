// Package datagen synthesizes the five evaluation datasets of the paper
// (Table 3 and Sec. 6). The originals (Fodors/Zagat Restaurant, UCI Cars,
// UCI Glass, UCI Bridges, Medicare Physician-Compare) cannot be shipped —
// the module is offline and the Physician dump is no longer published —
// so each generator reproduces the properties the algorithms actually
// exercise: schema and cardinality, attribute domains and their
// distance structure (near-duplicate strings with abbreviation and
// separator variants, correlated numerics), and the inter-attribute
// dependencies that make RFDcs discoverable.
//
// All generators are deterministic in (n, seed).
package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/dataset"
)

// DefaultSizes mirror Table 3 and Table 5 of the paper.
var DefaultSizes = map[string]int{
	"restaurant": 864,
	"cars":       406,
	"glass":      214,
	"bridges":    108,
	"physician":  10359,
}

// ByName dispatches to a generator by its lowercase dataset name.
func ByName(name string, n int, seed int64) (*dataset.Relation, error) {
	switch strings.ToLower(name) {
	case "restaurant":
		return Restaurant(n, seed), nil
	case "cars":
		return Cars(n, seed), nil
	case "glass":
		return Glass(n, seed), nil
	case "bridges":
		return Bridges(n, seed), nil
	case "physician":
		return Physician(n, seed), nil
	default:
		return nil, fmt.Errorf("datagen: unknown dataset %q", name)
	}
}

// Names lists the available generators in Table 3 order.
func Names() []string {
	return []string{"restaurant", "cars", "glass", "bridges", "physician"}
}

// ---------------------------------------------------------------------------
// Restaurant — 864 tuples × 6 attributes (Name, Addr, City, Phone, Type,
// Class). The original is the product of integrating Fodor's and Zagat's
// guides, so many restaurants appear twice with abbreviated names,
// different phone separators, and city aliases — precisely the
// near-duplicate structure the paper's Table 2 sample shows and that
// distance-based RFDcs exploit (Name ≈ → Phone ≈, Phone = → City ≈, ...).

var restaurantNameFirst = []string{
	"Granita", "Chinois", "Citrus", "Fenix", "Campanile", "Spago", "Patina",
	"Lucques", "Matsuhisa", "Valentino", "Drago", "Vincenti", "Giorgio",
	"Michael", "Nobu", "Remi", "Carmine", "Palio", "Union", "Gotham",
	"Mesa", "Tribeca", "Montrachet", "Chanterelle", "Daniel", "Lespinasse",
	"Bouley", "Aureole", "Lutece", "Oceana",
}

var restaurantNameSecond = []string{
	"", "Main", "Grill", "Bistro", "Cafe", "Kitchen", "Garden", "House",
	"Room", "Place", "Argyle", "West", "East", "on Main", "Downtown",
}

type cityInfo struct {
	name    string
	aliases []string
	area    string
}

var restaurantCities = []cityInfo{
	{name: "Los Angeles", aliases: []string{"LA", "L.A."}, area: "213"},
	{name: "Malibu", aliases: []string{"Malibu"}, area: "310"},
	{name: "Hollywood", aliases: []string{"W. Hollywood"}, area: "213"},
	{name: "Santa Monica", aliases: []string{"S. Monica"}, area: "310"},
	{name: "New York", aliases: []string{"New York City", "NY"}, area: "212"},
	{name: "Brooklyn", aliases: []string{"Brooklyn"}, area: "718"},
	{name: "Pasadena", aliases: []string{"Pasadena"}, area: "818"},
	{name: "Venice", aliases: []string{"Venice"}, area: "310"},
}

type cuisineInfo struct {
	name  string
	class int64
}

var restaurantCuisines = []cuisineInfo{
	{"Californian", 6}, {"French", 5}, {"French (new)", 5}, {"Italian", 4},
	{"Japanese", 3}, {"American", 2}, {"American (new)", 2}, {"Steakhouse", 1},
	{"Seafood", 7}, {"Mexican", 8}, {"Chinese", 9}, {"Continental", 0},
}

var streetNames = []string{
	"Ocean Ave", "Main St", "Melrose Ave", "Sunset Blvd", "Wilshire Blvd",
	"Broadway", "5th Ave", "Madison Ave", "Spring St", "Canal St",
	"Pico Blvd", "La Cienega Blvd",
}

// Restaurant generates the restaurant dataset.
func Restaurant(n int, seed int64) *dataset.Relation {
	rng := rand.New(rand.NewSource(seed))
	schema := dataset.NewSchema(
		dataset.Attribute{Name: "Name", Kind: dataset.KindString},
		dataset.Attribute{Name: "Addr", Kind: dataset.KindString},
		dataset.Attribute{Name: "City", Kind: dataset.KindString},
		dataset.Attribute{Name: "Phone", Kind: dataset.KindString},
		dataset.Attribute{Name: "Type", Kind: dataset.KindString},
		dataset.Attribute{Name: "Class", Kind: dataset.KindInt},
	)
	rel := dataset.NewRelation(schema)

	type entity struct {
		name, addr, city, phone, cuisine string
		class                            int64
		cityIdx                          int
	}
	for rel.Len() < n {
		first := restaurantNameFirst[rng.Intn(len(restaurantNameFirst))]
		second := restaurantNameSecond[rng.Intn(len(restaurantNameSecond))]
		name := strings.TrimSpace(first + " " + second)
		ci := rng.Intn(len(restaurantCities))
		city := restaurantCities[ci]
		cu := restaurantCuisines[rng.Intn(len(restaurantCuisines))]
		e := entity{
			name:    name,
			addr:    fmt.Sprintf("%d %s", 100+rng.Intn(9900), streetNames[rng.Intn(len(streetNames))]),
			city:    city.name,
			phone:   fmt.Sprintf("%s/%03d-%04d", city.area, 100+rng.Intn(900), rng.Intn(10000)),
			cuisine: cu.name,
			class:   cu.class,
			cityIdx: ci,
		}
		// Primary row.
		rel.MustAppend(restaurantRow(e.name, e.addr, e.city, e.phone, e.cuisine, e.class))
		// ~40% of entities get an integration near-duplicate.
		if rel.Len() < n && rng.Float64() < 0.4 {
			dupName := e.name
			if parts := strings.Fields(e.name); len(parts) > 1 && rng.Float64() < 0.6 {
				dupName = parts[0][:1] + ". " + strings.Join(parts[1:], " ") // "Chinois Main" -> "C. Main"
			}
			dupCity := e.city
			if als := restaurantCities[e.cityIdx].aliases; rng.Float64() < 0.5 {
				dupCity = als[rng.Intn(len(als))]
			}
			dupPhone := strings.Replace(e.phone, "/", "-", 1) // separator variant
			rel.MustAppend(restaurantRow(dupName, e.addr, dupCity, dupPhone, e.cuisine, e.class))
		}
	}
	return rel
}

func restaurantRow(name, addr, city, phone, cuisine string, class int64) dataset.Tuple {
	return dataset.Tuple{
		dataset.NewString(name), dataset.NewString(addr), dataset.NewString(city),
		dataset.NewString(phone), dataset.NewString(cuisine), dataset.NewInt(class),
	}
}

// ---------------------------------------------------------------------------
// Cars — 406 tuples × 9 attributes, the UCI Auto-MPG shape: model families
// share cylinders/displacement/horsepower, and mpg anticorrelates with
// weight and horsepower. Numeric correlations are what make Cars the
// dataset where low RHS thresholds already work well (Sec. 6.2).

var carMakes = []string{
	"chevrolet", "ford", "plymouth", "dodge", "amc", "toyota", "datsun",
	"honda", "volkswagen", "buick", "pontiac", "mazda", "mercury", "fiat",
	"peugeot", "audi", "saab", "volvo", "subaru", "opel",
}

var carModels = []string{
	"chevelle", "skylark", "satellite", "rebel", "torino", "corona",
	"510", "civic", "rabbit", "impala", "catalina", "rx2", "monarch",
	"124b", "504", "100ls", "99le", "244dl", "dl", "manta",
}

// Cars generates the cars dataset.
func Cars(n int, seed int64) *dataset.Relation {
	rng := rand.New(rand.NewSource(seed))
	schema := dataset.NewSchema(
		dataset.Attribute{Name: "Mpg", Kind: dataset.KindFloat},
		dataset.Attribute{Name: "Cylinders", Kind: dataset.KindInt},
		dataset.Attribute{Name: "Displacement", Kind: dataset.KindFloat},
		dataset.Attribute{Name: "Horsepower", Kind: dataset.KindInt},
		dataset.Attribute{Name: "Weight", Kind: dataset.KindInt},
		dataset.Attribute{Name: "Acceleration", Kind: dataset.KindFloat},
		dataset.Attribute{Name: "ModelYear", Kind: dataset.KindInt},
		dataset.Attribute{Name: "Origin", Kind: dataset.KindInt},
		dataset.Attribute{Name: "Name", Kind: dataset.KindString},
	)
	rel := dataset.NewRelation(schema)

	cylinderChoices := []int64{4, 4, 4, 6, 6, 8} // skew toward 4, like UCI
	for rel.Len() < n {
		cyl := cylinderChoices[rng.Intn(len(cylinderChoices))]
		disp := float64(cyl)*30 + rng.Float64()*60 - 30 // ~ cylinders
		if disp < 60 {
			disp = 60 + rng.Float64()*20
		}
		hp := int64(disp*0.55 + rng.Float64()*30)
		weight := int64(disp*8 + 1500 + rng.Float64()*400)
		mpg := 46 - float64(hp)*0.18 - float64(weight)*0.003 + rng.Float64()*4
		if mpg < 9 {
			mpg = 9 + rng.Float64()*2
		}
		accel := 27 - float64(hp)*0.08 + rng.Float64()*3
		if accel < 8 {
			accel = 8 + rng.Float64()
		}
		year := int64(70 + rng.Intn(13))
		origin := int64(1)
		makeIdx := rng.Intn(len(carMakes))
		if makeIdx >= 5 && makeIdx < 9 || makeIdx == 11 || makeIdx == 18 {
			origin = 3 // japanese-ish
		} else if makeIdx >= 13 {
			origin = 2 // european-ish
		}
		name := carMakes[makeIdx] + " " + carModels[rng.Intn(len(carModels))]
		rel.MustAppend(dataset.Tuple{
			dataset.NewFloat(math.Round(mpg*10) / 10),
			dataset.NewInt(cyl),
			dataset.NewFloat(math.Round(disp)),
			dataset.NewInt(hp),
			dataset.NewInt(weight),
			dataset.NewFloat(math.Round(accel*10) / 10),
			dataset.NewInt(year),
			dataset.NewInt(origin),
			dataset.NewString(name),
		})
	}
	return rel
}

// ---------------------------------------------------------------------------
// Glass — 214 tuples × 11 attributes, the UCI Glass-Identification shape:
// an id, the refractive index, eight oxide weight fractions that sum to
// ≈100, and the glass type driving per-component means. "Closed decimal
// numbers" (Sec. 6.2) whose distances integer thresholds capture poorly —
// the generator keeps that property.

// glassProfiles: per type, mean (Na, Mg, Al, Si, K, Ca, Ba, Fe).
var glassProfiles = map[int64][8]float64{
	1: {13.2, 3.5, 1.2, 72.6, 0.45, 8.8, 0.0, 0.06},
	2: {13.1, 3.0, 1.4, 72.6, 0.52, 9.1, 0.05, 0.08},
	3: {13.4, 3.5, 1.2, 72.4, 0.43, 8.8, 0.0, 0.06},
	5: {12.8, 0.8, 2.0, 72.4, 1.45, 10.1, 0.2, 0.06},
	6: {14.6, 1.3, 1.4, 73.2, 0.0, 9.4, 0.0, 0.0},
	7: {14.4, 0.5, 2.1, 72.8, 0.3, 8.5, 1.0, 0.01},
}

var glassTypes = []int64{1, 1, 1, 2, 2, 2, 3, 5, 6, 7} // UCI-like imbalance

// Glass generates the glass dataset.
func Glass(n int, seed int64) *dataset.Relation {
	rng := rand.New(rand.NewSource(seed))
	schema := dataset.NewSchema(
		dataset.Attribute{Name: "Id", Kind: dataset.KindInt},
		dataset.Attribute{Name: "RI", Kind: dataset.KindFloat},
		dataset.Attribute{Name: "Na", Kind: dataset.KindFloat},
		dataset.Attribute{Name: "Mg", Kind: dataset.KindFloat},
		dataset.Attribute{Name: "Al", Kind: dataset.KindFloat},
		dataset.Attribute{Name: "Si", Kind: dataset.KindFloat},
		dataset.Attribute{Name: "K", Kind: dataset.KindFloat},
		dataset.Attribute{Name: "Ca", Kind: dataset.KindFloat},
		dataset.Attribute{Name: "Ba", Kind: dataset.KindFloat},
		dataset.Attribute{Name: "Fe", Kind: dataset.KindFloat},
		dataset.Attribute{Name: "Type", Kind: dataset.KindInt},
	)
	rel := dataset.NewRelation(schema)
	round := func(f float64, digits int) float64 {
		p := math.Pow(10, float64(digits))
		return math.Round(f*p) / p
	}
	for i := 0; rel.Len() < n; i++ {
		typ := glassTypes[rng.Intn(len(glassTypes))]
		prof := glassProfiles[typ]
		var comp [8]float64
		total := 0.0
		for k := range prof {
			comp[k] = math.Max(0, prof[k]+rng.NormFloat64()*prof[k]*0.06+rng.NormFloat64()*0.02)
			total += comp[k]
		}
		// Oxide weight fractions sum to ≈100% in real glass; renormalize
		// with a little residual slack.
		scale := (100 + rng.NormFloat64()*0.5) / total
		for k := range comp {
			comp[k] *= scale
		}
		ri := 1.515 + (comp[5]-8.8)*0.002 + rng.NormFloat64()*0.001 // RI tracks Ca
		rel.MustAppend(dataset.Tuple{
			dataset.NewInt(int64(i + 1)),
			dataset.NewFloat(round(ri, 5)),
			dataset.NewFloat(round(comp[0], 2)),
			dataset.NewFloat(round(comp[1], 2)),
			dataset.NewFloat(round(comp[2], 2)),
			dataset.NewFloat(round(comp[3], 2)),
			dataset.NewFloat(round(comp[4], 2)),
			dataset.NewFloat(round(comp[5], 2)),
			dataset.NewFloat(round(comp[6], 2)),
			dataset.NewFloat(round(comp[7], 2)),
			dataset.NewInt(typ),
		})
	}
	return rel
}

// ---------------------------------------------------------------------------
// Bridges — 108 tuples × 13 attributes, the UCI Pittsburgh-Bridges shape:
// mostly categorical design-description attributes whose values follow
// the construction era (ERECTED → MATERIAL → TYPE, PURPOSE → LANES,
// LENGTH ↔ SPAN).

var bridgeRivers = []string{"A", "M", "O"} // Allegheny, Monongahela, Ohio

// Bridges generates the bridges dataset.
func Bridges(n int, seed int64) *dataset.Relation {
	rng := rand.New(rand.NewSource(seed))
	schema := dataset.NewSchema(
		dataset.Attribute{Name: "Identif", Kind: dataset.KindString},
		dataset.Attribute{Name: "River", Kind: dataset.KindString},
		dataset.Attribute{Name: "Location", Kind: dataset.KindInt},
		dataset.Attribute{Name: "Erected", Kind: dataset.KindInt},
		dataset.Attribute{Name: "Purpose", Kind: dataset.KindString},
		dataset.Attribute{Name: "Length", Kind: dataset.KindInt},
		dataset.Attribute{Name: "Lanes", Kind: dataset.KindInt},
		dataset.Attribute{Name: "ClearG", Kind: dataset.KindString},
		dataset.Attribute{Name: "TOrD", Kind: dataset.KindString},
		dataset.Attribute{Name: "Material", Kind: dataset.KindString},
		dataset.Attribute{Name: "Span", Kind: dataset.KindString},
		dataset.Attribute{Name: "RelL", Kind: dataset.KindString},
		dataset.Attribute{Name: "Type", Kind: dataset.KindString},
	)
	rel := dataset.NewRelation(schema)
	purposes := []string{"HIGHWAY", "HIGHWAY", "RR", "AQUEDUCT", "WALK"}
	for i := 0; rel.Len() < n; i++ {
		erected := int64(1818 + rng.Intn(170))
		material, typ := "STEEL", "ARCH"
		switch {
		case erected < 1870:
			material = "WOOD"
			typ = "WOOD"
		case erected < 1910:
			material = "IRON"
			if rng.Float64() < 0.6 {
				typ = "SUSPEN"
			} else {
				typ = "SIMPLE-T"
			}
		default:
			if rng.Float64() < 0.5 {
				typ = "ARCH"
			} else {
				typ = "CANTILEV"
			}
		}
		purpose := purposes[rng.Intn(len(purposes))]
		lanes := int64(2)
		if purpose == "HIGHWAY" && rng.Float64() < 0.4 {
			lanes = 4
		}
		if purpose == "RR" || purpose == "WALK" {
			lanes = 1 + int64(rng.Intn(2))
		}
		length := int64(800 + rng.Intn(4000))
		span := "MEDIUM"
		if length < 1200 {
			span = "SHORT"
		} else if length > 3200 {
			span = "LONG"
		}
		relL := []string{"S", "S-F", "F"}[rng.Intn(3)]
		clearG := "G"
		if rng.Float64() < 0.2 {
			clearG = "N"
		}
		tOrD := "THROUGH"
		if typ == "WOOD" || rng.Float64() < 0.25 {
			tOrD = "DECK"
		}
		rel.MustAppend(dataset.Tuple{
			dataset.NewString(fmt.Sprintf("E%d", i+1)),
			dataset.NewString(bridgeRivers[rng.Intn(len(bridgeRivers))]),
			dataset.NewInt(int64(1 + rng.Intn(52))),
			dataset.NewInt(erected),
			dataset.NewString(purpose),
			dataset.NewInt(length),
			dataset.NewInt(lanes),
			dataset.NewString(clearG),
			dataset.NewString(tOrD),
			dataset.NewString(material),
			dataset.NewString(span),
			dataset.NewString(relL),
			dataset.NewString(typ),
		})
	}
	return rel
}

// ---------------------------------------------------------------------------
// Physician — up to 10359 tuples × 18 attributes, the Medicare
// Physician-Compare shape used by the Table 5 stress test: a mix of
// textual and numeric attributes, strong functional structure
// (Zip → City → State, School/GradYear per physician, Specialty →
// Credential), and several rows per physician (one per practice
// location), which gives the dataset its duplicate-heavy character.

var physFirstNames = []string{
	"JAMES", "MARY", "JOHN", "PATRICIA", "ROBERT", "JENNIFER", "MICHAEL",
	"LINDA", "WILLIAM", "ELIZABETH", "DAVID", "BARBARA", "RICHARD", "SUSAN",
	"JOSEPH", "JESSICA", "THOMAS", "SARAH", "CHARLES", "KAREN",
}

var physLastNames = []string{
	"SMITH", "JOHNSON", "WILLIAMS", "BROWN", "JONES", "GARCIA", "MILLER",
	"DAVIS", "RODRIGUEZ", "MARTINEZ", "HERNANDEZ", "LOPEZ", "GONZALEZ",
	"WILSON", "ANDERSON", "THOMAS", "TAYLOR", "MOORE", "JACKSON", "MARTIN",
}

var physSchools = []string{
	"HARVARD MEDICAL SCHOOL", "JOHNS HOPKINS UNIVERSITY", "STANFORD UNIVERSITY",
	"UNIVERSITY OF PENNSYLVANIA", "DUKE UNIVERSITY", "COLUMBIA UNIVERSITY",
	"UNIVERSITY OF MICHIGAN", "YALE UNIVERSITY", "EMORY UNIVERSITY",
	"BAYLOR COLLEGE OF MEDICINE", "OTHER",
}

type specialtyInfo struct {
	name, credential string
}

var physSpecialties = []specialtyInfo{
	{"INTERNAL MEDICINE", "MD"}, {"FAMILY PRACTICE", "MD"},
	{"CARDIOLOGY", "MD"}, {"DERMATOLOGY", "MD"},
	{"NURSE PRACTITIONER", "NP"}, {"PHYSICIAN ASSISTANT", "PA"},
	{"CHIROPRACTIC", "DC"}, {"OPTOMETRY", "OD"},
	{"PODIATRY", "DPM"}, {"DENTISTRY", "DDS"},
}

type zipInfo struct {
	zip, city, state string
}

var physZips = []zipInfo{
	{"15213", "PITTSBURGH", "PA"}, {"15217", "PITTSBURGH", "PA"},
	{"10001", "NEW YORK", "NY"}, {"10016", "NEW YORK", "NY"},
	{"90001", "LOS ANGELES", "CA"}, {"90210", "BEVERLY HILLS", "CA"},
	{"60601", "CHICAGO", "IL"}, {"60614", "CHICAGO", "IL"},
	{"77001", "HOUSTON", "TX"}, {"77030", "HOUSTON", "TX"},
	{"19104", "PHILADELPHIA", "PA"}, {"02115", "BOSTON", "MA"},
	{"30303", "ATLANTA", "GA"}, {"98101", "SEATTLE", "WA"},
	{"33101", "MIAMI", "FL"}, {"80202", "DENVER", "CO"},
}

var physOrgs = []string{
	"GENERAL HOSPITAL", "UNIVERSITY MEDICAL CENTER", "COMMUNITY HEALTH",
	"REGIONAL CLINIC", "PRIMARY CARE ASSOCIATES", "SPECIALTY GROUP",
	"HEALTH PARTNERS", "MEDICAL ASSOCIATES",
}

// Physician generates the physician dataset.
func Physician(n int, seed int64) *dataset.Relation {
	rng := rand.New(rand.NewSource(seed))
	schema := dataset.NewSchema(
		dataset.Attribute{Name: "NPI", Kind: dataset.KindInt},
		dataset.Attribute{Name: "LastName", Kind: dataset.KindString},
		dataset.Attribute{Name: "FirstName", Kind: dataset.KindString},
		dataset.Attribute{Name: "Gender", Kind: dataset.KindString},
		dataset.Attribute{Name: "Credential", Kind: dataset.KindString},
		dataset.Attribute{Name: "School", Kind: dataset.KindString},
		dataset.Attribute{Name: "GradYear", Kind: dataset.KindInt},
		dataset.Attribute{Name: "Specialty", Kind: dataset.KindString},
		dataset.Attribute{Name: "Org", Kind: dataset.KindString},
		dataset.Attribute{Name: "OrgMembers", Kind: dataset.KindInt},
		dataset.Attribute{Name: "Street", Kind: dataset.KindString},
		dataset.Attribute{Name: "Suite", Kind: dataset.KindString},
		dataset.Attribute{Name: "City", Kind: dataset.KindString},
		dataset.Attribute{Name: "State", Kind: dataset.KindString},
		dataset.Attribute{Name: "Zip", Kind: dataset.KindString},
		dataset.Attribute{Name: "Phone", Kind: dataset.KindString},
		dataset.Attribute{Name: "MedicareFlag", Kind: dataset.KindString},
		dataset.Attribute{Name: "Quality", Kind: dataset.KindInt},
	)
	rel := dataset.NewRelation(schema)
	for rel.Len() < n {
		npi := int64(1000000000 + rng.Intn(900000000))
		last := physLastNames[rng.Intn(len(physLastNames))]
		first := physFirstNames[rng.Intn(len(physFirstNames))]
		gender := "M"
		if rng.Float64() < 0.5 {
			gender = "F"
		}
		spec := physSpecialties[rng.Intn(len(physSpecialties))]
		school := physSchools[rng.Intn(len(physSchools))]
		gradYear := int64(1960 + rng.Intn(55))
		org := physOrgs[rng.Intn(len(physOrgs))]
		orgMembers := int64(1 + rng.Intn(400))
		quality := int64(1 + rng.Intn(5))
		flag := "Y"
		if rng.Float64() < 0.15 {
			flag = "N"
		}
		// One row per practice location (1-3), sharing all physician-level
		// attributes — the duplicate structure of the original extract.
		locations := 1 + rng.Intn(3)
		for l := 0; l < locations && rel.Len() < n; l++ {
			zi := physZips[rng.Intn(len(physZips))]
			street := fmt.Sprintf("%d %s", 100+rng.Intn(9900),
				[]string{"MAIN ST", "OAK AVE", "CENTRE AVE", "MARKET ST", "PARK BLVD"}[rng.Intn(5)])
			// Always a concrete value: the empty string and tokens like
			// "NONE" would round-trip to null through the CSV codec.
			suite := fmt.Sprintf("FL %d", 1+rng.Intn(9))
			if rng.Float64() < 0.4 {
				suite = fmt.Sprintf("STE %d", 100+rng.Intn(900))
			}
			phone := fmt.Sprintf("%s%07d", zi.zip[:3], rng.Intn(10000000))
			rel.MustAppend(dataset.Tuple{
				dataset.NewInt(npi),
				dataset.NewString(last),
				dataset.NewString(first),
				dataset.NewString(gender),
				dataset.NewString(spec.credential),
				dataset.NewString(school),
				dataset.NewInt(gradYear),
				dataset.NewString(spec.name),
				dataset.NewString(org),
				dataset.NewInt(orgMembers),
				dataset.NewString(street),
				dataset.NewString(suite),
				dataset.NewString(zi.city),
				dataset.NewString(zi.state),
				dataset.NewString(zi.zip),
				dataset.NewString(phone),
				dataset.NewString(flag),
				dataset.NewInt(quality),
			})
		}
	}
	return rel
}
