package datagen

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func TestTable3Shapes(t *testing.T) {
	// The generators must reproduce Table 3's (tuples, attributes) shapes.
	cases := []struct {
		name  string
		attrs int
	}{
		{"restaurant", 6},
		{"cars", 9},
		{"glass", 11},
		{"bridges", 13},
		{"physician", 18},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			n := DefaultSizes[c.name]
			if c.name == "physician" {
				n = 300 // full size is a stress-test knob, not a unit-test one
			}
			rel, err := ByName(c.name, n, 1)
			if err != nil {
				t.Fatal(err)
			}
			if rel.Len() != n {
				t.Errorf("tuples = %d, want %d", rel.Len(), n)
			}
			if rel.Schema().Len() != c.attrs {
				t.Errorf("attributes = %d, want %d", rel.Schema().Len(), c.attrs)
			}
			if rel.CountMissing() != 0 {
				t.Errorf("%d generated cells missing; injection is eval's job", rel.CountMissing())
			}
		})
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("bogus", 10, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestNamesMatchesRegistry(t *testing.T) {
	for _, name := range Names() {
		if _, err := ByName(name, 10, 1); err != nil {
			t.Errorf("listed dataset %q not generatable: %v", name, err)
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, name := range Names() {
		a, err := ByName(name, 60, 42)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ByName(name, 60, 42)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Errorf("%s: same seed diverged", name)
		}
		c, err := ByName(name, 60, 43)
		if err != nil {
			t.Fatal(err)
		}
		if a.Equal(c) {
			t.Errorf("%s: different seeds identical", name)
		}
	}
}

func TestRestaurantNearDuplicates(t *testing.T) {
	rel := Restaurant(400, 7)
	phone := rel.Schema().MustIndex("Phone")
	// Separator variants of the same number must exist (the integration
	// artifact RENUVER's RFDcs exploit).
	digits := func(s string) string {
		var b strings.Builder
		for _, r := range s {
			if r >= '0' && r <= '9' {
				b.WriteRune(r)
			}
		}
		return b.String()
	}
	seen := map[string][]string{}
	for i := 0; i < rel.Len(); i++ {
		p := rel.Get(i, phone).Str()
		seen[digits(p)] = append(seen[digits(p)], p)
	}
	variants := 0
	for _, forms := range seen {
		if len(forms) >= 2 && forms[0] != forms[1] {
			variants++
		}
	}
	if variants == 0 {
		t.Error("no phone separator variants generated")
	}
}

func TestRestaurantCityAreaCorrelation(t *testing.T) {
	rel := Restaurant(600, 3)
	city := rel.Schema().MustIndex("City")
	phone := rel.Schema().MustIndex("Phone")
	// Canonical city names must map to a single area code.
	area := map[string]string{}
	for i := 0; i < rel.Len(); i++ {
		c := rel.Get(i, city).Str()
		if c != "Malibu" && c != "Brooklyn" { // only spot-check unambiguous ones
			continue
		}
		a := rel.Get(i, phone).Str()[:3]
		if prev, ok := area[c]; ok && prev != a {
			t.Fatalf("city %q has area codes %s and %s", c, prev, a)
		}
		area[c] = a
	}
}

func TestCarsCorrelations(t *testing.T) {
	rel := Cars(406, 5)
	s := rel.Schema()
	mpg, hp, cyl := s.MustIndex("Mpg"), s.MustIndex("Horsepower"), s.MustIndex("Cylinders")
	// Mean mpg of 8-cylinder cars must be far below mean mpg of 4-cylinder.
	sum := map[int64]float64{}
	cnt := map[int64]int{}
	for i := 0; i < rel.Len(); i++ {
		c := rel.Get(i, cyl).Int()
		sum[c] += rel.Get(i, mpg).Float()
		cnt[c]++
	}
	if cnt[4] == 0 || cnt[8] == 0 {
		t.Fatal("cylinder classes missing")
	}
	if sum[4]/float64(cnt[4]) <= sum[8]/float64(cnt[8])+5 {
		t.Errorf("mpg(4cyl)=%.1f not clearly above mpg(8cyl)=%.1f",
			sum[4]/float64(cnt[4]), sum[8]/float64(cnt[8]))
	}
	// Horsepower must be positive and bounded sanely.
	for i := 0; i < rel.Len(); i++ {
		h := rel.Get(i, hp).Int()
		if h < 20 || h > 400 {
			t.Fatalf("horsepower %d out of range", h)
		}
	}
}

func TestGlassCompositionSums(t *testing.T) {
	rel := Glass(214, 9)
	s := rel.Schema()
	comps := []string{"Na", "Mg", "Al", "Si", "K", "Ca", "Ba", "Fe"}
	for i := 0; i < rel.Len(); i++ {
		total := 0.0
		for _, c := range comps {
			v := rel.Get(i, s.MustIndex(c)).Float()
			if v < 0 {
				t.Fatalf("negative component %s = %v", c, v)
			}
			total += v
		}
		if total < 90 || total > 110 {
			t.Fatalf("row %d composition sums to %v, want ≈100", i, total)
		}
	}
	typ := s.MustIndex("Type")
	for i := 0; i < rel.Len(); i++ {
		tv := rel.Get(i, typ).Int()
		if _, ok := glassProfiles[tv]; !ok {
			t.Fatalf("unknown glass type %d", tv)
		}
	}
}

func TestBridgesEraDependencies(t *testing.T) {
	rel := Bridges(108, 2)
	s := rel.Schema()
	erected, material := s.MustIndex("Erected"), s.MustIndex("Material")
	for i := 0; i < rel.Len(); i++ {
		year := rel.Get(i, erected).Int()
		mat := rel.Get(i, material).Str()
		if year < 1870 && mat != "WOOD" {
			t.Fatalf("bridge from %d has material %s", year, mat)
		}
		if year >= 1910 && mat != "STEEL" {
			t.Fatalf("bridge from %d has material %s", year, mat)
		}
	}
}

func TestPhysicianFunctionalStructure(t *testing.T) {
	rel := Physician(500, 11)
	s := rel.Schema()
	zip, city, state := s.MustIndex("Zip"), s.MustIndex("City"), s.MustIndex("State")
	spec, cred := s.MustIndex("Specialty"), s.MustIndex("Credential")
	zipCity := map[string]string{}
	specCred := map[string]string{}
	for i := 0; i < rel.Len(); i++ {
		z, c := rel.Get(i, zip).Str(), rel.Get(i, city).Str()
		if prev, ok := zipCity[z]; ok && prev != c {
			t.Fatalf("zip %s maps to cities %s and %s", z, prev, c)
		}
		zipCity[z] = c
		sp, cr := rel.Get(i, spec).Str(), rel.Get(i, cred).Str()
		if prev, ok := specCred[sp]; ok && prev != cr {
			t.Fatalf("specialty %s has credentials %s and %s", sp, prev, cr)
		}
		specCred[sp] = cr
		if rel.Get(i, state).IsNull() {
			t.Fatal("null state generated")
		}
	}
}

func TestPhysicianMultiLocationDuplicates(t *testing.T) {
	rel := Physician(600, 4)
	npi := rel.Schema().MustIndex("NPI")
	counts := map[int64]int{}
	for i := 0; i < rel.Len(); i++ {
		counts[rel.Get(i, npi).Int()]++
	}
	multi := 0
	for _, c := range counts {
		if c > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("no multi-location physicians generated")
	}
}

func TestGeneratedDataCSVRoundTrips(t *testing.T) {
	for _, name := range Names() {
		rel, err := ByName(name, 40, 1)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := dataset.WriteCSV(&buf, rel); err != nil {
			t.Fatal(err)
		}
		back, err := dataset.ReadCSV(&buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if back.Len() != rel.Len() || back.Schema().Len() != rel.Schema().Len() {
			t.Errorf("%s: round trip changed shape", name)
		}
		if back.CountMissing() != 0 {
			t.Errorf("%s: round trip invented %d nulls", name, back.CountMissing())
		}
	}
}
