// Package distance implements the per-domain distance functions δ_A the
// paper assigns to attribute domains (Sec. 5.3): Levenshtein edit distance
// for strings, absolute difference for numerics, and equality (0/1) for
// booleans. It also provides the distance pattern of Definition 5.4 —
// the per-attribute distance vector between two tuples with "_" marks
// where either side is missing.
//
// The string kernels are bit-parallel: Myers' algorithm packs the DP
// column into one uint64 whenever the shorter string is at most 64
// runes (the overwhelmingly common case in the datasets), with the
// banded dynamic program as the long-string fallback, and the bounded
// predicate rejects most pairs on a length or alphabet-mask pre-filter
// before touching any DP. All kernels run out of per-worker Scratch
// arenas (see Scratch); the package-level entry points below borrow an
// arena from an internal pool, so they allocate nothing per call
// either. The differential harness in kernels_test.go and
// FuzzLevenshteinKernels proves every kernel agrees with a naive
// reference oracle.
package distance

import "unicode/utf8"

// Levenshtein returns the edit distance (unit-cost insert/delete/
// substitute) between a and b, computed over runes.
func Levenshtein(a, b string) int {
	sc := getScratch()
	d := sc.Levenshtein(a, b)
	putScratch(sc)
	return d
}

// LevenshteinRunes is Levenshtein over pre-decoded symbol slices (see
// Runes) — the engine's compiled view interns each string's runes once
// and reuses them across every pairwise computation.
func LevenshteinRunes(ra, rb []rune) int {
	sc := getScratch()
	d := sc.LevenshteinRunes(ra, rb)
	putScratch(sc)
	return d
}

// LevenshteinWithin reports whether the edit distance between a and b is
// at most max, short-circuiting as soon as the bound is provably exceeded
// (length difference, alphabet-mask lower bound, or a DP column proven
// above the bound). The candidate-generation hot loop only needs the
// predicate, not the exact distance, whenever the LHS threshold would be
// violated anyway.
func LevenshteinWithin(a, b string, max int) bool {
	sc := getScratch()
	ok := sc.Within(a, b, max)
	putScratch(sc)
	return ok
}

// LevenshteinRunesWithin is LevenshteinWithin over pre-decoded symbol
// slices, exported for the engine's threshold-aware path.
func LevenshteinRunesWithin(ra, rb []rune, max int) bool {
	sc := getScratch()
	ok := sc.WithinRunes(ra, rb, max)
	putScratch(sc)
	return ok
}

// LevenshteinRunesWithinMasked is LevenshteinRunesWithin with
// caller-supplied alphabet signatures (RuneMask) — the engine interns
// each string's mask once and hands it down so the pre-filter never
// rescans the runes.
func LevenshteinRunesWithinMasked(ra, rb []rune, ma, mb uint64, max int) bool {
	sc := getScratch()
	ok := sc.WithinRunesMasked(ra, rb, ma, mb, max)
	putScratch(sc)
	return ok
}

// NormalizedLevenshtein returns the normalized edit distance of Yujian &
// Bo [25]: 2·GLD / (α·(|a|+|b|) + GLD) with unit costs (α = 1), which is a
// metric in [0, 1]. Two empty strings have distance 0.
func NormalizedLevenshtein(a, b string) float64 {
	la, lb := symbolCount(a), symbolCount(b)
	if la == 0 && lb == 0 {
		return 0
	}
	gld := float64(Levenshtein(a, b))
	return 2 * gld / (float64(la+lb) + gld)
}

// Runes decodes the comparison symbols of a string: runes for valid
// UTF-8, raw bytes otherwise. The byte fallback keeps the identity
// property (distance 0 iff equal) for arbitrary binary data — decoding
// invalid sequences would collapse distinct bytes onto U+FFFD. It is
// exported so the engine can decode each interned string once.
func Runes(s string) []rune { return toRunes(s) }

func toRunes(s string) []rune {
	// Fast path for ASCII, the overwhelmingly common case in the datasets.
	ascii := true
	for i := 0; i < len(s); i++ {
		if s[i] >= utf8.RuneSelf {
			ascii = false
			break
		}
	}
	if !ascii && utf8.ValidString(s) {
		return []rune(s)
	}
	r := make([]rune, len(s))
	for i := 0; i < len(s); i++ {
		r[i] = rune(s[i])
	}
	return r
}

// symbolCount is the length toRunes would produce.
func symbolCount(s string) int {
	if utf8.ValidString(s) {
		return utf8.RuneCountInString(s)
	}
	return len(s)
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
