// Package distance implements the per-domain distance functions δ_A the
// paper assigns to attribute domains (Sec. 5.3): Levenshtein edit distance
// for strings, absolute difference for numerics, and equality (0/1) for
// booleans. It also provides the distance pattern of Definition 5.4 —
// the per-attribute distance vector between two tuples with "_" marks
// where either side is missing.
package distance

import (
	"unicode/utf8"

	"repro/internal/obs"
)

// Levenshtein returns the edit distance (unit-cost insert/delete/
// substitute) between a and b, computed over runes.
//
// The implementation is the classic two-row dynamic program with the
// shorter string on the columns, so scratch space is O(min(|a|,|b|)).
func Levenshtein(a, b string) int {
	obs.GlobalAdd(obs.CtrLevenshteinCalls, 1)
	if a == b {
		return 0
	}
	return levRunes(toRunes(a), toRunes(b))
}

// LevenshteinRunes is Levenshtein over pre-decoded symbol slices (see
// Runes) — the engine's compiled view interns each string's runes once
// and reuses them across every pairwise computation.
func LevenshteinRunes(ra, rb []rune) int {
	obs.GlobalAdd(obs.CtrLevenshteinCalls, 1)
	return levRunes(ra, rb)
}

func levRunes(ra, rb []rune) int {
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	if len(ra) < len(rb) {
		ra, rb = rb, ra
	}
	prev := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		diag := prev[0] // prev[i-1][j-1]
		prev[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 0
			if ra[i-1] != rb[j-1] {
				cost = 1
			}
			next := min3(prev[j]+1, prev[j-1]+1, diag+cost)
			diag = prev[j]
			prev[j] = next
		}
	}
	return prev[len(rb)]
}

// LevenshteinWithin reports whether the edit distance between a and b is
// at most max, short-circuiting as soon as the bound is provably exceeded.
// The candidate-generation hot loop only needs the predicate, not the
// exact distance, whenever the LHS threshold would be violated anyway.
func LevenshteinWithin(a, b string, max int) bool {
	obs.GlobalAdd(obs.CtrLevenshteinCalls, 1)
	if max < 0 {
		return false
	}
	if a == b {
		return true
	}
	return levRunesWithin(toRunes(a), toRunes(b), max)
}

// LevenshteinRunesWithin is LevenshteinWithin over pre-decoded symbol
// slices, exported for the engine's banded early-exit path.
func LevenshteinRunesWithin(ra, rb []rune, max int) bool {
	obs.GlobalAdd(obs.CtrLevenshteinCalls, 1)
	if max < 0 {
		return false
	}
	return levRunesWithin(ra, rb, max)
}

func levRunesWithin(ra, rb []rune, max int) bool {
	if len(ra) < len(rb) {
		ra, rb = rb, ra
	}
	if len(ra)-len(rb) > max {
		// Length difference alone exceeds the bound: no DP needed.
		obs.GlobalAdd(obs.CtrLevenshteinEarlyExits, 1)
		return false
	}
	if len(rb) == 0 {
		return len(ra) <= max
	}
	const inf = 1 << 30
	prev := make([]int, len(rb)+1)
	for j := range prev {
		if j <= max {
			prev[j] = j
		} else {
			prev[j] = inf
		}
	}
	for i := 1; i <= len(ra); i++ {
		diag := prev[0]
		if i <= max {
			prev[0] = i
		} else {
			prev[0] = inf
		}
		rowMin := prev[0]
		for j := 1; j <= len(rb); j++ {
			cost := 0
			if ra[i-1] != rb[j-1] {
				cost = 1
			}
			next := min3(prev[j]+1, prev[j-1]+1, diag+cost)
			if next > inf {
				next = inf
			}
			diag = prev[j]
			prev[j] = next
			if next < rowMin {
				rowMin = next
			}
		}
		if rowMin > max {
			// Whole DP row above the bound: the distance can only grow.
			obs.GlobalAdd(obs.CtrLevenshteinEarlyExits, 1)
			return false
		}
	}
	return prev[len(rb)] <= max
}

// NormalizedLevenshtein returns the normalized edit distance of Yujian &
// Bo [25]: 2·GLD / (α·(|a|+|b|) + GLD) with unit costs (α = 1), which is a
// metric in [0, 1]. Two empty strings have distance 0.
func NormalizedLevenshtein(a, b string) float64 {
	la, lb := symbolCount(a), symbolCount(b)
	if la == 0 && lb == 0 {
		return 0
	}
	gld := float64(Levenshtein(a, b))
	return 2 * gld / (float64(la+lb) + gld)
}

// Runes decodes the comparison symbols of a string: runes for valid
// UTF-8, raw bytes otherwise. The byte fallback keeps the identity
// property (distance 0 iff equal) for arbitrary binary data — decoding
// invalid sequences would collapse distinct bytes onto U+FFFD. It is
// exported so the engine can decode each interned string once.
func Runes(s string) []rune { return toRunes(s) }

func toRunes(s string) []rune {
	// Fast path for ASCII, the overwhelmingly common case in the datasets.
	ascii := true
	for i := 0; i < len(s); i++ {
		if s[i] >= utf8.RuneSelf {
			ascii = false
			break
		}
	}
	if !ascii && utf8.ValidString(s) {
		return []rune(s)
	}
	r := make([]rune, len(s))
	for i := 0; i < len(s); i++ {
		r[i] = rune(s[i])
	}
	return r
}

// symbolCount is the length toRunes would produce.
func symbolCount(s string) int {
	if utf8.ValidString(s) {
		return utf8.RuneCountInString(s)
	}
	return len(s)
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
