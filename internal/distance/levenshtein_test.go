package distance

import (
	"math/rand"
	"testing"
	"testing/quick"
	"unicode/utf8"
)

func TestLevenshteinTable(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"", "abc", 3},
		{"abc", "", 3},
		{"abc", "abc", 0},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"gumbo", "gambol", 2},
		{"Fenix", "Fenix Argyle", 7},
		{"Chinois Main", "C. Main", 6},
		{"LA", "Los Angeles", 9},
		{"310/456-0488", "310-392-9025", 8},
		{"a", "b", 1},
		{"ab", "ba", 2},
		{"héllo", "hello", 1}, // non-ASCII counted as one rune
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := Levenshtein(c.b, c.a); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

// levenshteinRef is a straightforward full-matrix reference implementation
// used to cross-check the optimized two-row version.
func levenshteinRef(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	d := make([][]int, len(ra)+1)
	for i := range d {
		d[i] = make([]int, len(rb)+1)
		d[i][0] = i
	}
	for j := 0; j <= len(rb); j++ {
		d[0][j] = j
	}
	for i := 1; i <= len(ra); i++ {
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			d[i][j] = min3(d[i-1][j]+1, d[i][j-1]+1, d[i-1][j-1]+cost)
		}
	}
	return d[len(ra)][len(rb)]
}

func randomWord(rng *rand.Rand, maxLen int) string {
	n := rng.Intn(maxLen + 1)
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = byte('a' + rng.Intn(6)) // small alphabet to force collisions
	}
	return string(buf)
}

func TestLevenshteinMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		a, b := randomWord(rng, 12), randomWord(rng, 12)
		if got, want := Levenshtein(a, b), levenshteinRef(a, b); got != want {
			t.Fatalf("Levenshtein(%q,%q) = %d, ref %d", a, b, got, want)
		}
	}
}

func TestLevenshteinMetricProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		a, b, c := randomWord(rng, 10), randomWord(rng, 10), randomWord(rng, 10)
		dab, dba := Levenshtein(a, b), Levenshtein(b, a)
		if dab != dba {
			t.Fatalf("not symmetric: %q %q", a, b)
		}
		if (dab == 0) != (a == b) {
			t.Fatalf("identity of indiscernibles violated: %q %q -> %d", a, b, dab)
		}
		if Levenshtein(a, c) > dab+Levenshtein(b, c) {
			t.Fatalf("triangle inequality violated: %q %q %q", a, b, c)
		}
	}
}

func TestLevenshteinWithin(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		a, b := randomWord(rng, 12), randomWord(rng, 12)
		d := Levenshtein(a, b)
		for _, max := range []int{0, 1, 2, 3, 5, 8, 15} {
			if got, want := LevenshteinWithin(a, b, max), d <= max; got != want {
				t.Fatalf("LevenshteinWithin(%q,%q,%d) = %v, distance %d", a, b, max, got, d)
			}
		}
	}
	if LevenshteinWithin("a", "b", -1) {
		t.Error("negative bound must be false")
	}
	if !LevenshteinWithin("same", "same", 0) {
		t.Error("equal strings within 0")
	}
	if LevenshteinWithin("", "abcd", 3) {
		t.Error("length gap 4 cannot be within 3")
	}
	if !LevenshteinWithin("", "abc", 3) {
		t.Error("empty vs abc is exactly 3")
	}
}

func TestNormalizedLevenshtein(t *testing.T) {
	if got := NormalizedLevenshtein("", ""); got != 0 {
		t.Errorf("norm('','') = %v", got)
	}
	if got := NormalizedLevenshtein("abc", "abc"); got != 0 {
		t.Errorf("norm(equal) = %v", got)
	}
	// Totally different equal-length strings: GLD = n, norm = 2n/(2n+n) = 2/3.
	if got, want := NormalizedLevenshtein("aaa", "bbb"), 2.0/3.0; got != want {
		t.Errorf("norm(aaa,bbb) = %v, want %v", got, want)
	}
	// Against empty: GLD = n, norm = 2n/(n+n) = 1.
	if got := NormalizedLevenshtein("abc", ""); got != 1 {
		t.Errorf("norm(abc,'') = %v, want 1", got)
	}
}

func TestNormalizedLevenshteinRangeProperty(t *testing.T) {
	f := func(a, b string) bool {
		// Bound input size to keep the quadratic DP cheap.
		if utf8.RuneCountInString(a) > 64 {
			a = string([]rune(a)[:64])
		}
		if utf8.RuneCountInString(b) > 64 {
			b = string([]rune(b)[:64])
		}
		d := NormalizedLevenshtein(a, b)
		return d >= 0 && d <= 1 && NormalizedLevenshtein(b, a) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkLevenshteinShort(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Levenshtein("Chinois Main", "C. Main")
	}
}

func BenchmarkLevenshteinWithinReject(b *testing.B) {
	for i := 0; i < b.N; i++ {
		LevenshteinWithin("a very long restaurant name here", "completely different street", 2)
	}
}
