package distance

import (
	"math/rand"
	"runtime/debug"
	"strings"
	"testing"
)

// This file is the permanent differential harness for the string
// kernels: every kernel (Myers bit-parallel, banded DP, and the
// package's automatic dispatch) is proven byte-identical to a naive
// full-matrix reference oracle, on exhaustively enumerated small
// inputs, randomized inputs crossing the 64-rune word boundary, and
// Unicode edge cases. Any future kernel lands by being added here.

// naiveLevenshtein is the O(nm) full-matrix reference oracle: no
// banding, no early exit, no bit tricks — as close to the textbook
// recurrence as it gets. buf is an optional reusable matrix row
// backing; pass nil for a one-off call.
func naiveLevenshtein(ra, rb []rune, buf []int) (int, []int) {
	n, m := len(ra), len(rb)
	need := (n + 1) * (m + 1)
	if cap(buf) < need {
		buf = make([]int, need)
	}
	d := buf[:need]
	at := func(i, j int) int { return i*(m+1) + j }
	for i := 0; i <= n; i++ {
		d[at(i, 0)] = i
	}
	for j := 0; j <= m; j++ {
		d[at(0, j)] = j
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			v := d[at(i-1, j)] + 1
			if w := d[at(i, j-1)] + 1; w < v {
				v = w
			}
			if w := d[at(i-1, j-1)] + cost; w < v {
				v = w
			}
			d[at(i, j)] = v
		}
	}
	return d[at(n, m)], buf
}

// kernelsUnderTest enumerates every kernel configuration the harness
// must prove in agreement.
var kernelsUnderTest = []struct {
	name string
	k    Kernel
}{
	{"auto", KernelAuto},
	{"myers", KernelMyers},
	{"banded", KernelBanded},
}

// forceKernel installs a kernel selection for the duration of the test.
func forceKernel(t testing.TB, k Kernel) {
	t.Helper()
	prev := SetKernel(k)
	t.Cleanup(func() { SetKernel(prev) })
}

// enumerate returns every string over alphabet with length <= maxLen,
// in length-major lexicographic order.
func enumerate(alphabet []rune, maxLen int) [][]rune {
	out := [][]rune{{}}
	prev := [][]rune{{}}
	for l := 1; l <= maxLen; l++ {
		var next [][]rune
		for _, p := range prev {
			for _, c := range alphabet {
				w := make([]rune, len(p)+1)
				copy(w, p)
				w[len(p)] = c
				next = append(next, w)
			}
		}
		out = append(out, next...)
		prev = next
	}
	return out
}

// TestExhaustiveKernelAgreement enumerates every pair of strings up to
// length 6 over a 3-symbol alphabet (length 5 in -short mode) and
// asserts that the Myers kernel, the banded DP, and the automatic
// dispatch all agree with the naive oracle on the exact distance, and
// that the bounded predicate agrees exactly at the threshold boundary
// (d-1, d, d+1) under every kernel. Off-by-one word-boundary bugs that
// random fuzzing can miss have nowhere to hide in an exhaustive sweep.
func TestExhaustiveKernelAgreement(t *testing.T) {
	maxLen := 6
	if testing.Short() {
		maxLen = 5
	}
	words := enumerate([]rune{'a', 'b', 'c'}, maxLen)
	t.Logf("%d words, %d pairs", len(words), len(words)*len(words))

	scMyers, scBanded, scAuto := NewScratch(), NewScratch(), NewScratch()
	var buf []int
	var d int
	for _, ra := range words {
		for _, rb := range words {
			d, buf = naiveLevenshtein(ra, rb, buf)

			SetKernel(KernelMyers)
			if got := scMyers.LevenshteinRunes(ra, rb); got != d {
				t.Fatalf("myers(%q,%q) = %d, oracle %d", string(ra), string(rb), got, d)
			}
			SetKernel(KernelBanded)
			if got := scBanded.LevenshteinRunes(ra, rb); got != d {
				t.Fatalf("banded(%q,%q) = %d, oracle %d", string(ra), string(rb), got, d)
			}
			SetKernel(KernelAuto)
			if got := scAuto.LevenshteinRunes(ra, rb); got != d {
				t.Fatalf("auto(%q,%q) = %d, oracle %d", string(ra), string(rb), got, d)
			}

			for _, cfg := range kernelsUnderTest {
				SetKernel(cfg.k)
				for _, th := range []int{d - 1, d, d + 1} {
					if got, want := scAuto.WithinRunes(ra, rb, th), d <= th; got != want {
						t.Fatalf("%s: Within(%q,%q,%d) = %v, exact %d",
							cfg.name, string(ra), string(rb), th, got, d)
					}
				}
			}
		}
	}
	SetKernel(KernelAuto)
}

// TestKernelDifferentialRandom drives random pairs through every kernel
// across the whole length spectrum, deliberately crossing the 64-rune
// word boundary so the Myers/fallback seam is exercised, with mixed
// ASCII and multi-byte alphabets.
func TestKernelDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alphabets := [][]rune{
		{'a', 'b'},
		{'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h'},
		{'α', 'β', 'γ', 'é', '界', 'a', 'b'},
	}
	iters := 4000
	if testing.Short() {
		iters = 800
	}
	randWord := func(alpha []rune) []rune {
		// Lengths cluster around the word boundary half the time.
		var n int
		if rng.Intn(2) == 0 {
			n = 56 + rng.Intn(18) // 56..73
		} else {
			n = rng.Intn(30)
		}
		w := make([]rune, n)
		for i := range w {
			w[i] = alpha[rng.Intn(len(alpha))]
		}
		return w
	}
	sc := NewScratch()
	var buf []int
	var d int
	for i := 0; i < iters; i++ {
		alpha := alphabets[rng.Intn(len(alphabets))]
		ra, rb := randWord(alpha), randWord(alpha)
		d, buf = naiveLevenshtein(ra, rb, buf)
		for _, cfg := range kernelsUnderTest {
			SetKernel(cfg.k)
			if got := sc.LevenshteinRunes(ra, rb); got != d {
				t.Fatalf("%s(%q,%q) = %d, oracle %d", cfg.name, string(ra), string(rb), got, d)
			}
			for _, th := range []int{0, d - 1, d, d + 1} {
				if got, want := sc.WithinRunes(ra, rb, th), d <= th; got != want {
					t.Fatalf("%s: Within(%q,%q,%d) = %v, exact %d",
						cfg.name, string(ra), string(rb), th, got, d)
				}
			}
		}
		SetKernel(KernelAuto)
	}
}

// TestKernelUnicodeEdges pins the Unicode cases the word layout is most
// likely to get wrong: multi-byte runes (one symbol each), combining
// marks (distinct symbols from the precomposed form), strings of
// exactly 63, 64, and 65 runes straddling the one-word limit, and
// invalid UTF-8 (compared byte-wise by the symbol model).
func TestKernelUnicodeEdges(t *testing.T) {
	cases := []struct{ a, b string }{
		{"héllo", "hello"},
		{"café", "café"}, // precomposed é vs e + combining acute
		{"́́", "́"},
		{"日本語のテキスト", "日本语のテキスト"},
		{"αβγδ", "αβγ"},
		{strings.Repeat("a", 63), strings.Repeat("a", 63) + "b"},
		{strings.Repeat("a", 64), strings.Repeat("a", 64)},
		{strings.Repeat("a", 64), strings.Repeat("a", 63) + "b"},
		{strings.Repeat("a", 65), strings.Repeat("a", 64)},
		{strings.Repeat("x", 64), strings.Repeat("y", 65)},
		{strings.Repeat("α", 63) + "β", strings.Repeat("α", 64)},
		{strings.Repeat("界", 65), strings.Repeat("界", 64) + "間"},
		{"abc\xff\xfe", "abc\xff"}, // invalid UTF-8: byte symbols
		{"\xc3\x28", "\xc3\xa9"},   // truncated vs valid 2-byte sequence
		{"", strings.Repeat("z", 70)},
	}
	sc := NewScratch()
	var buf []int
	var d int
	for _, c := range cases {
		ra, rb := Runes(c.a), Runes(c.b)
		d, buf = naiveLevenshtein(ra, rb, buf)
		for _, cfg := range kernelsUnderTest {
			SetKernel(cfg.k)
			if got := sc.Levenshtein(c.a, c.b); got != d {
				t.Errorf("%s(%q,%q) = %d, oracle %d", cfg.name, c.a, c.b, got, d)
			}
			if got := Levenshtein(c.a, c.b); got != d {
				t.Errorf("package %s(%q,%q) = %d, oracle %d", cfg.name, c.a, c.b, got, d)
			}
			for _, th := range []int{d - 1, d, d + 1} {
				if got, want := LevenshteinWithin(c.a, c.b, th), d <= th; got != want {
					t.Errorf("%s: Within(%q,%q,%d) = %v, exact %d", cfg.name, c.a, c.b, th, got, d)
				}
			}
		}
		SetKernel(KernelAuto)
	}
}

// TestMaskLowerBoundSound proves the alphabet-mask pre-filter never
// overshoots the true distance on random inputs — the property that
// makes rejecting on the mask bound safe.
func TestMaskLowerBoundSound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	alpha := []rune{'a', 'b', 'c', 'x', 'y', 'z', 'é', '界', '́'}
	var buf []int
	var d int
	for i := 0; i < 3000; i++ {
		ra := make([]rune, rng.Intn(20))
		rb := make([]rune, rng.Intn(20))
		for j := range ra {
			ra[j] = alpha[rng.Intn(len(alpha))]
		}
		for j := range rb {
			rb[j] = alpha[rng.Intn(len(alpha))]
		}
		d, buf = naiveLevenshtein(ra, rb, buf)
		if lb := MaskLowerBound(RuneMask(ra), RuneMask(rb)); lb > d {
			t.Fatalf("mask bound %d exceeds distance %d for %q %q", lb, d, string(ra), string(rb))
		}
	}
}

// TestKernelZeroAllocs is the allocation guard BENCH_core surfaced the
// need for: the exact kernel, the bounded predicate, and the
// pre-decoded forms must not allocate per call, for ASCII and
// multi-byte inputs alike, on both the pooled package entry points and
// a dedicated Scratch. GC is paused so the scratch pool cannot be
// drained mid-measurement.
func TestKernelZeroAllocs(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	sc := NewScratch()
	ra, rb := Runes("310/456-0488"), Runes("310-392-9025")
	ga, gb := Runes("héllo wörld"), Runes("hello world")
	cases := []struct {
		name string
		fn   func()
	}{
		{"Levenshtein", func() { Levenshtein("310/456-0488", "310-392-9025") }},
		{"LevenshteinUnicode", func() { Levenshtein("héllo wörld", "hello world") }},
		{"LevenshteinWithin", func() { LevenshteinWithin("310/456-0488", "310-392-9025", 3) }},
		{"LevenshteinRunes", func() { LevenshteinRunes(ra, rb) }},
		{"LevenshteinRunesWithin", func() { LevenshteinRunesWithin(ra, rb, 3) }},
		{"Scratch.Levenshtein", func() { sc.Levenshtein("Chinois Main", "C. Main") }},
		{"Scratch.LevenshteinRunes", func() { sc.LevenshteinRunes(ga, gb) }},
		{"Scratch.Within", func() { sc.Within("Chinois Main", "C. Main", 4) }},
		{"Scratch.WithinRunes", func() { sc.WithinRunes(ga, gb, 2) }},
		{"Scratch.WithinRunesMasked", func() {
			sc.WithinRunesMasked(ra, rb, RuneMask(ra), RuneMask(rb), 5)
		}},
	}
	for _, c := range cases {
		c.fn() // warm the arena (decode buffers, DP row)
		if n := testing.AllocsPerRun(200, c.fn); n != 0 {
			t.Errorf("%s: %.2f allocs/op, want 0", c.name, n)
		}
	}
}

// TestLongStringFallback pins the dispatch rule: both sides over 64
// runes runs the banded DP (counted as such), while a short pattern
// against a long text stays bit-parallel.
func TestLongStringFallback(t *testing.T) {
	long1 := strings.Repeat("abcd", 20) // 80 runes
	long2 := strings.Repeat("abcf", 20) // 80 runes
	ra, rb := Runes(long1), Runes(long2)
	var buf []int
	d, _ := naiveLevenshtein(ra, rb, buf)
	sc := NewScratch()
	if got := sc.Levenshtein(long1, long2); got != d {
		t.Fatalf("fallback distance %d, oracle %d", d, got)
	}
	short := "abcdabcd"
	dm, _ := naiveLevenshtein(Runes(short), ra, nil)
	if got := sc.Levenshtein(short, long1); got != dm {
		t.Fatalf("short-vs-long distance %d, oracle %d", got, dm)
	}
	if got := sc.Within(long1, long2, d); !got {
		t.Fatal("Within at exact distance must hold through the fallback")
	}
	if got := sc.Within(long1, long2, d-1); got {
		t.Fatal("Within below exact distance must fail through the fallback")
	}
}

func BenchmarkKernels(b *testing.B) {
	pairs := []struct {
		name string
		a, b string
	}{
		{"phone12", "310/456-0488", "310-392-9025"},
		{"name", "Chinois Main", "C. Main"},
		{"long64", strings.Repeat("abcdefgh", 8), strings.Repeat("abcdefgx", 8)},
	}
	for _, k := range kernelsUnderTest {
		for _, p := range pairs {
			b.Run(k.name+"/"+p.name, func(b *testing.B) {
				forceKernel(b, k.k)
				sc := NewScratch()
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					sc.Levenshtein(p.a, p.b)
				}
			})
		}
	}
}

func BenchmarkWithinPrefilter(b *testing.B) {
	b.Run("mask-reject", func(b *testing.B) {
		sc := NewScratch()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sc.Within("a very long restaurant name here", "completely different street", 2)
		}
	})
	b.Run("accept", func(b *testing.B) {
		sc := NewScratch()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sc.Within("310/456-0488", "310-392-9025", 8)
		}
	})
}
