package distance

import (
	"testing"

	"repro/internal/obs"
)

// The distance layer records into the process-wide obs sink, gated by
// one atomic bool: nothing is counted while disabled, and both the call
// counter and the early-exit counter move while enabled.
func TestLevenshteinGlobalCounters(t *testing.T) {
	obs.Global().Reset()
	obs.SetGlobalEnabled(false)
	Levenshtein("kitten", "sitting")
	LevenshteinWithin("kitten", "sitting", 1)
	if got := obs.Global().Counter(obs.CtrLevenshteinCalls); got != 0 {
		t.Fatalf("disabled sink counted %d calls", got)
	}

	obs.SetGlobalEnabled(true)
	defer func() {
		obs.SetGlobalEnabled(false)
		obs.Global().Reset()
	}()
	Levenshtein("kitten", "sitting")
	if got := obs.Global().Counter(obs.CtrLevenshteinCalls); got != 1 {
		t.Fatalf("calls = %d, want 1", got)
	}

	// Length-difference prune: |"abcdefgh"| - |"a"| = 7 > 2.
	if LevenshteinWithin("abcdefgh", "a", 2) {
		t.Fatal("bound should be exceeded")
	}
	// Band prune: same lengths, all positions differ, bound 1.
	if LevenshteinWithin("aaaaaaaa", "bbbbbbbb", 1) {
		t.Fatal("bound should be exceeded")
	}
	if got := obs.Global().Counter(obs.CtrLevenshteinEarlyExits); got != 2 {
		t.Fatalf("early exits = %d, want 2", got)
	}
	if got := obs.Global().Counter(obs.CtrLevenshteinCalls); got != 3 {
		t.Fatalf("calls = %d, want 3", got)
	}
}
