package distance

import (
	"math"
	"testing"

	"repro/internal/dataset"
)

func TestValuesByDomain(t *testing.T) {
	cases := []struct {
		name string
		a, b dataset.Value
		want float64
	}{
		{"strings", dataset.NewString("kitten"), dataset.NewString("sitting"), 3},
		{"equal strings", dataset.NewString("x"), dataset.NewString("x"), 0},
		{"ints", dataset.NewInt(6), dataset.NewInt(5), 1},
		{"floats", dataset.NewFloat(1.5), dataset.NewFloat(4.0), 2.5},
		{"int vs float", dataset.NewInt(2), dataset.NewFloat(2.5), 0.5},
		{"bools equal", dataset.NewBool(true), dataset.NewBool(true), 0},
		{"bools differ", dataset.NewBool(true), dataset.NewBool(false), 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Values(c.a, c.b); got != c.want {
				t.Errorf("Values = %v, want %v", got, c.want)
			}
			if got := Values(c.b, c.a); got != c.want {
				t.Errorf("Values not symmetric: %v", got)
			}
		})
	}
}

func TestValuesMissing(t *testing.T) {
	cases := []struct {
		name string
		a, b dataset.Value
	}{
		{"null left", dataset.Null, dataset.NewString("x")},
		{"null right", dataset.NewInt(1), dataset.Null},
		{"both null", dataset.Null, dataset.Null},
		{"string vs int", dataset.NewString("1"), dataset.NewInt(1)},
		{"bool vs int", dataset.NewBool(true), dataset.NewInt(1)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Values(c.a, c.b); !IsMissing(got) {
				t.Errorf("Values = %v, want Missing", got)
			}
			if ValuesWithin(c.a, c.b, math.Inf(1)) {
				t.Error("ValuesWithin must be false for missing")
			}
		})
	}
}

func TestMissingNeverSatisfiesThreshold(t *testing.T) {
	// The core rule: a "_" component fails every comparison.
	if Missing <= 1e18 || Missing >= -1e18 {
		t.Error("Missing must compare false against everything")
	}
	p := Pattern{Missing}
	if p.Satisfies(0, math.Inf(1)) {
		t.Error("Missing satisfies +inf threshold")
	}
}

func TestValuesWithinAgreesWithValues(t *testing.T) {
	pairs := []struct{ a, b dataset.Value }{
		{dataset.NewString("Granita"), dataset.NewString("Citrus")},
		{dataset.NewString("Citrus"), dataset.NewString("Citrus")},
		{dataset.NewInt(6), dataset.NewInt(5)},
		{dataset.NewFloat(1.1), dataset.NewFloat(9.9)},
		{dataset.NewBool(true), dataset.NewBool(false)},
	}
	for _, pr := range pairs {
		d := Values(pr.a, pr.b)
		for _, max := range []float64{0, 0.5, 1, 2, 5, 10} {
			if got, want := ValuesWithin(pr.a, pr.b, max), d <= max; got != want {
				t.Errorf("ValuesWithin(%v,%v,%v) = %v, distance %v", pr.a, pr.b, max, got, d)
			}
		}
	}
}

func TestPatternBetweenPaperExample(t *testing.T) {
	// Example 5.5: pattern between t5 and t6 of Table 2 is [7, _, 0, _, 0].
	t5 := dataset.Tuple{
		dataset.NewString("Fenix"), dataset.NewString("Hollywood"),
		dataset.NewString("213/848-6677"), dataset.Null, dataset.NewInt(5),
	}
	t6 := dataset.Tuple{
		dataset.NewString("Fenix Argyle"), dataset.Null,
		dataset.NewString("213/848-6677"), dataset.NewString("French (new)"), dataset.NewInt(5),
	}
	p := PatternBetween(t5, t6)
	if p[0] != 7 {
		t.Errorf("p[Name] = %v, want 7", p[0])
	}
	if !IsMissing(p[1]) {
		t.Errorf("p[City] = %v, want Missing", p[1])
	}
	if p[2] != 0 {
		t.Errorf("p[Phone] = %v, want 0", p[2])
	}
	if !IsMissing(p[3]) {
		t.Errorf("p[Type] = %v, want Missing", p[3])
	}
	if p[4] != 0 {
		t.Errorf("p[Class] = %v, want 0", p[4])
	}
}

func TestPatternInto(t *testing.T) {
	a := dataset.Tuple{dataset.NewInt(1), dataset.NewString("x")}
	b := dataset.Tuple{dataset.NewInt(4), dataset.Null}
	p := make(Pattern, 2)
	PatternInto(p, a, b)
	if p[0] != 3 || !IsMissing(p[1]) {
		t.Errorf("PatternInto = %v", p)
	}
}

func TestPatternSatisfies(t *testing.T) {
	p := Pattern{3, Missing, 0}
	if !p.Satisfies(0, 3) {
		t.Error("3 <= 3 should satisfy")
	}
	if p.Satisfies(0, 2.9) {
		t.Error("3 <= 2.9 should not satisfy")
	}
	if p.Satisfies(1, 1000) {
		t.Error("Missing should never satisfy")
	}
	if !p.Satisfies(2, 0) {
		t.Error("0 <= 0 should satisfy")
	}
}

func TestPatternMeanOverPaperExamples(t *testing.T) {
	// Example 5.7: dist(t5,t6) over {Name, Phone} on pattern [7,_,0,_,0] = 3.5.
	p := Pattern{7, Missing, 0, Missing, 0}
	got, ok := p.MeanOver([]int{0, 2})
	if !ok || got != 3.5 {
		t.Errorf("MeanOver = %v,%v want 3.5,true", got, ok)
	}
	// Example 5.8: patterns [6,9,_,0] -> 7.5 and [6,0,_,1] -> 3 over {Name, City}.
	p27 := Pattern{6, 9, Missing, 0}
	p37 := Pattern{6, 0, Missing, 1}
	if d, ok := p27.MeanOver([]int{0, 1}); !ok || d != 7.5 {
		t.Errorf("dist(t2,t7) = %v,%v want 7.5", d, ok)
	}
	if d, ok := p37.MeanOver([]int{0, 1}); !ok || d != 3 {
		t.Errorf("dist(t3,t7) = %v,%v want 3", d, ok)
	}
}

func TestPatternMeanOverEdgeCases(t *testing.T) {
	p := Pattern{1, Missing}
	if _, ok := p.MeanOver(nil); ok {
		t.Error("mean over no attrs should fail")
	}
	if _, ok := p.MeanOver([]int{1}); ok {
		t.Error("mean including Missing should fail")
	}
	if d, ok := p.MeanOver([]int{0}); !ok || d != 1 {
		t.Errorf("singleton mean = %v,%v", d, ok)
	}
}
