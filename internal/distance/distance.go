package distance

import (
	"math"

	"repro/internal/dataset"
)

// Missing marks an uncomputable component of a distance pattern — the "_"
// of Definition 5.4, present when either tuple is null on the attribute.
// NaN is used so that any threshold comparison against it is false, which
// is exactly the paper's rule: a pattern component that is "_" can never
// satisfy an LHS constraint.
var Missing = math.NaN()

// IsMissing reports whether a pattern component is the "_" mark.
func IsMissing(d float64) bool { return math.IsNaN(d) }

// Values returns the domain-appropriate distance between two non-null
// cells (Sec. 5.3): absolute difference for numerics, Levenshtein for
// strings, 0/1 equality for booleans. If either cell is null, or the kinds
// are incomparable, it returns Missing.
func Values(a, b dataset.Value) float64 {
	if a.IsNull() || b.IsNull() {
		return Missing
	}
	ka, kb := a.Kind(), b.Kind()
	switch {
	case ka == dataset.KindString && kb == dataset.KindString:
		return float64(Levenshtein(a.Str(), b.Str()))
	case ka.Numeric() && kb.Numeric():
		return math.Abs(a.Float() - b.Float())
	case ka == dataset.KindBool && kb == dataset.KindBool:
		if a.Bool() == b.Bool() {
			return 0
		}
		return 1
	default:
		return Missing
	}
}

// ValuesWithin reports whether the distance between two cells is ≤ max.
// It is equivalent to Values(a,b) <= max but avoids computing the exact
// edit distance for strings when only the predicate is needed.
func ValuesWithin(a, b dataset.Value, max float64) bool {
	if a.IsNull() || b.IsNull() {
		return false
	}
	ka, kb := a.Kind(), b.Kind()
	switch {
	case ka == dataset.KindString && kb == dataset.KindString:
		return LevenshteinWithin(a.Str(), b.Str(), int(math.Floor(max)))
	case ka.Numeric() && kb.Numeric():
		return math.Abs(a.Float()-b.Float()) <= max
	case ka == dataset.KindBool && kb == dataset.KindBool:
		d := 1.0
		if a.Bool() == b.Bool() {
			d = 0
		}
		return d <= max
	default:
		return false
	}
}

// Pattern is the distance pattern p of Definition 5.4: one component per
// attribute, Missing where either tuple is null on that attribute.
type Pattern []float64

// NewPattern returns a zeroed pattern with one component per attribute,
// for callers that fill components selectively (e.g. via PatternInto).
func NewPattern(m int) Pattern { return make(Pattern, m) }

// PatternBetween computes the distance pattern for a tuple pair.
func PatternBetween(a, b dataset.Tuple) Pattern {
	p := make(Pattern, len(a))
	for i := range a {
		p[i] = Values(a[i], b[i])
	}
	return p
}

// PatternInto computes the distance pattern for a tuple pair into a
// caller-provided slice, avoiding per-pair allocation in hot loops.
// The slice must have len == len(a).
func PatternInto(p Pattern, a, b dataset.Tuple) {
	for i := range a {
		p[i] = Values(a[i], b[i])
	}
}

// Satisfies reports whether component i of the pattern is present and at
// most the threshold — the satisfaction rule for a single φ[B] constraint.
func (p Pattern) Satisfies(attr int, threshold float64) bool {
	d := p[attr]
	return !IsMissing(d) && d <= threshold
}

// MeanOver returns the mean of the pattern components at the given
// attribute positions — the distance value of Equation 2. The second
// result is false when attrs is empty or any component is Missing.
func (p Pattern) MeanOver(attrs []int) (float64, bool) {
	if len(attrs) == 0 {
		return 0, false
	}
	sum := 0.0
	for _, a := range attrs {
		d := p[a]
		if IsMissing(d) {
			return 0, false
		}
		sum += d
	}
	return sum / float64(len(attrs)), true
}
