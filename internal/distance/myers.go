package distance

import "repro/internal/obs"

// Myers' bit-parallel Levenshtein (in Hyyrö's formulation): the pattern
// p — the shorter string, at most 64 runes — is encoded as one uint64
// DP column of vertical deltas (pv/mv = positions where the column
// increases/decreases downward), and each text rune advances the whole
// column with a constant number of word operations. The running score
// is the DP cell D[m][j], i.e. the edit distance between the full
// pattern and the first j text runes; after the last text rune it is
// the exact Levenshtein distance.
//
// Word layout: bit i of every vector corresponds to pattern position
// i+1 (row i+1 of the classic matrix). peq[c] has bit i set iff
// p[i] == c. For m < 64 the high bits are dead: pv starts with only the
// low m bits set, and the update keeps every live vector masked to
// those bits, so no explicit masking is needed in the loop.

// buildPeq fills the arena's pattern-equality table for p. ASCII runes
// index the stamped array directly; anything else goes to the spill
// list (at most 64 entries, linear-probed). Epoch stamping makes the
// rebuild O(m) with no clearing.
func (sc *Scratch) buildPeq(p []rune) {
	sc.epoch++
	if sc.epoch == 0 {
		// uint32 wrap: stale stamps could collide with the new epoch, so
		// reset them once every 2^32 rebuilds.
		for i := range sc.stamp {
			sc.stamp[i] = 0
		}
		sc.epoch = 1
	}
	sc.xkeys = sc.xkeys[:0]
	sc.xvals = sc.xvals[:0]
	for i, r := range p {
		bit := uint64(1) << uint(i)
		if r >= 0 && r < asciiPeq {
			if sc.stamp[r] != sc.epoch {
				sc.stamp[r] = sc.epoch
				sc.peq[r] = 0
			}
			sc.peq[r] |= bit
			continue
		}
		found := false
		for k, kr := range sc.xkeys {
			if kr == r {
				sc.xvals[k] |= bit
				found = true
				break
			}
		}
		if !found {
			sc.xkeys = append(sc.xkeys, r)
			sc.xvals = append(sc.xvals, bit)
		}
	}
}

// peqOf looks up the pattern-equality word for one text rune.
func (sc *Scratch) peqOf(r rune) uint64 {
	if r >= 0 && r < asciiPeq {
		if sc.stamp[r] == sc.epoch {
			return sc.peq[r]
		}
		return 0
	}
	for k, kr := range sc.xkeys {
		if kr == r {
			return sc.xvals[k]
		}
	}
	return 0
}

// myersDistance returns the exact edit distance between pattern p
// (1 <= len(p) <= 64) and text t.
func (sc *Scratch) myersDistance(p, t []rune) int {
	m := len(p)
	sc.buildPeq(p)
	pv := ^uint64(0)
	if m < 64 {
		pv = 1<<uint(m) - 1
	}
	var mv uint64
	score := m
	last := uint64(1) << uint(m-1)
	for _, c := range t {
		eq := sc.peqOf(c)
		xv := eq | mv
		xh := (((eq & pv) + pv) ^ pv) | eq
		ph := mv | ^(xh | pv)
		mh := pv & xh
		if ph&last != 0 {
			score++
		}
		if mh&last != 0 {
			score--
		}
		ph = ph<<1 | 1
		mh <<= 1
		pv = mh | ^(xv | ph)
		mv = ph & xv
	}
	return score
}

// myersWithin reports whether the edit distance between pattern p
// (1 <= len(p) <= 64) and text t is at most max, preserving the banded
// kernel's threshold early-exit: the score moves by at most one per
// text rune, so once score minus the remaining rune count exceeds the
// bound the answer is settled.
func (sc *Scratch) myersWithin(p, t []rune, max int) bool {
	m := len(p)
	sc.buildPeq(p)
	pv := ^uint64(0)
	if m < 64 {
		pv = 1<<uint(m) - 1
	}
	var mv uint64
	score := m
	last := uint64(1) << uint(m-1)
	n := len(t)
	for j, c := range t {
		eq := sc.peqOf(c)
		xv := eq | mv
		xh := (((eq & pv) + pv) ^ pv) | eq
		ph := mv | ^(xh | pv)
		mh := pv & xh
		if ph&last != 0 {
			score++
		}
		if mh&last != 0 {
			score--
		}
		ph = ph<<1 | 1
		mh <<= 1
		pv = mh | ^(xv | ph)
		mv = ph & xv
		if score-(n-j-1) > max {
			// Even a run of matches to the end cannot pull the score
			// back under the bound.
			obs.GlobalAdd(obs.CtrLevenshteinEarlyExits, 1)
			return false
		}
	}
	return score <= max
}
