package distance

import (
	"testing"
	"unicode/utf8"
)

// FuzzLevenshteinMetric: the metric axioms hold for arbitrary inputs,
// and the bounded predicate agrees with the exact distance.
func FuzzLevenshteinMetric(f *testing.F) {
	f.Add("kitten", "sitting")
	f.Add("", "")
	f.Add("a", "")
	f.Add("héllo", "hello")
	f.Add("310/456-0488", "310-456-0488")
	f.Fuzz(func(t *testing.T, a, b string) {
		// Bound the quadratic DP.
		if utf8.RuneCountInString(a) > 64 {
			a = string([]rune(a)[:64])
		}
		if utf8.RuneCountInString(b) > 64 {
			b = string([]rune(b)[:64])
		}
		d := Levenshtein(a, b)
		if d != Levenshtein(b, a) {
			t.Fatalf("not symmetric: %q %q", a, b)
		}
		if (d == 0) != (a == b) {
			t.Fatalf("identity violated: %q %q -> %d", a, b, d)
		}
		la, lb := symbolCount(a), symbolCount(b)
		lenDiff := la - lb
		if lenDiff < 0 {
			lenDiff = -lenDiff
		}
		maxLen := la
		if lb > maxLen {
			maxLen = lb
		}
		if d < lenDiff || d > maxLen {
			t.Fatalf("bounds violated: d=%d, |len diff|=%d, max len=%d", d, lenDiff, maxLen)
		}
		for _, bound := range []int{0, 1, d - 1, d, d + 1} {
			if got, want := LevenshteinWithin(a, b, bound), d <= bound; got != want {
				t.Fatalf("Within(%q,%q,%d) = %v, exact %d", a, b, bound, got, d)
			}
		}
		norm := NormalizedLevenshtein(a, b)
		if norm < 0 || norm > 1 {
			t.Fatalf("normalized out of range: %v", norm)
		}
	})
}
