package distance

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzLevenshteinKernels is the differential fuzz target of the kernel
// harness: for arbitrary UTF-8 (and invalid-UTF-8) inputs, the Myers
// bit-parallel kernel, the banded DP, and the automatic dispatch must
// all return exactly the naive O(nm) oracle's distance, and the bounded
// predicate must agree with the oracle at the threshold boundary
// (d == th and d == th±1) under every kernel. Inputs are capped just
// above the 64-rune word boundary so the Myers/fallback seam stays in
// scope without making the oracle quadratic-slow.
func FuzzLevenshteinKernels(f *testing.F) {
	f.Add("kitten", "sitting")
	f.Add("", "")
	f.Add("a", "")
	f.Add("héllo", "hello")
	f.Add("café", "café") // combining mark vs precomposed
	f.Add("日本語のテキスト", "日本语のテキスト")
	f.Add("\xc3\x28", "\xc3\xa9") // invalid UTF-8
	f.Add(strings.Repeat("a", 63), strings.Repeat("a", 63)+"b")
	f.Add(strings.Repeat("a", 64), strings.Repeat("a", 63)+"b")
	f.Add(strings.Repeat("a", 65), strings.Repeat("a", 64))
	f.Add(strings.Repeat("α", 64), strings.Repeat("α", 63)+"β")
	f.Fuzz(func(t *testing.T, a, b string) {
		// Keep the naive oracle affordable while straddling the 64-rune
		// word boundary.
		const maxRunes = 72
		ra, rb := Runes(a), Runes(b)
		if len(ra) > maxRunes {
			ra = ra[:maxRunes]
		}
		if len(rb) > maxRunes {
			rb = rb[:maxRunes]
		}
		d, _ := naiveLevenshtein(ra, rb, nil)
		sc := NewScratch()
		for _, cfg := range kernelsUnderTest {
			SetKernel(cfg.k)
			if got := sc.LevenshteinRunes(ra, rb); got != d {
				t.Errorf("%s: distance %d, oracle %d (%q vs %q)",
					cfg.name, got, d, string(ra), string(rb))
			}
			for _, th := range []int{d - 1, d, d + 1} {
				if got, want := sc.WithinRunes(ra, rb, th), d <= th; got != want {
					t.Errorf("%s: Within(th=%d) = %v, exact %d (%q vs %q)",
						cfg.name, th, got, d, string(ra), string(rb))
				}
			}
		}
		SetKernel(KernelAuto)
	})
}

// FuzzLevenshteinMetric: the metric axioms hold for arbitrary inputs,
// and the bounded predicate agrees with the exact distance.
func FuzzLevenshteinMetric(f *testing.F) {
	f.Add("kitten", "sitting")
	f.Add("", "")
	f.Add("a", "")
	f.Add("héllo", "hello")
	f.Add("310/456-0488", "310-456-0488")
	f.Fuzz(func(t *testing.T, a, b string) {
		// Bound the quadratic DP.
		if utf8.RuneCountInString(a) > 64 {
			a = string([]rune(a)[:64])
		}
		if utf8.RuneCountInString(b) > 64 {
			b = string([]rune(b)[:64])
		}
		d := Levenshtein(a, b)
		if d != Levenshtein(b, a) {
			t.Fatalf("not symmetric: %q %q", a, b)
		}
		if (d == 0) != (a == b) {
			t.Fatalf("identity violated: %q %q -> %d", a, b, d)
		}
		la, lb := symbolCount(a), symbolCount(b)
		lenDiff := la - lb
		if lenDiff < 0 {
			lenDiff = -lenDiff
		}
		maxLen := la
		if lb > maxLen {
			maxLen = lb
		}
		if d < lenDiff || d > maxLen {
			t.Fatalf("bounds violated: d=%d, |len diff|=%d, max len=%d", d, lenDiff, maxLen)
		}
		for _, bound := range []int{0, 1, d - 1, d, d + 1} {
			if got, want := LevenshteinWithin(a, b, bound), d <= bound; got != want {
				t.Fatalf("Within(%q,%q,%d) = %v, exact %d", a, b, bound, got, d)
			}
		}
		norm := NormalizedLevenshtein(a, b)
		if norm < 0 || norm > 1 {
			t.Fatalf("normalized out of range: %v", norm)
		}
	})
}
