package distance

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"unicode/utf8"

	"repro/internal/obs"
)

// Kernel selects the string-kernel family used for edit distances. The
// default (KernelAuto) runs Myers' bit-parallel algorithm whenever the
// shorter string fits one 64-bit word and falls back to the banded
// dynamic program otherwise. The forced variants exist for the
// differential test harness and for apples-to-apples benchmarking; they
// are process-wide and not meant for concurrent toggling.
type Kernel int32

const (
	// KernelAuto picks Myers for patterns of at most 64 runes, the
	// banded DP beyond that.
	KernelAuto Kernel = iota
	// KernelMyers forces the bit-parallel kernel (still falling back to
	// the banded DP when both strings exceed 64 runes, where a single
	// word cannot encode the pattern).
	KernelMyers
	// KernelBanded forces the pre-Myers banded dynamic program — the
	// reference the differential harness compares against.
	KernelBanded
)

var forcedKernel atomic.Int32

// SetKernel installs a process-wide kernel selection and returns the
// previous one. It exists for the differential tests and benchmarks;
// production code leaves KernelAuto in place.
func SetKernel(k Kernel) Kernel {
	return Kernel(forcedKernel.Swap(int32(k)))
}

// ActiveKernel returns the current process-wide kernel selection.
func ActiveKernel() Kernel { return Kernel(forcedKernel.Load()) }

// String names the kernel for logs and the build-info metric.
func (k Kernel) String() string {
	switch k {
	case KernelMyers:
		return "myers"
	case KernelBanded:
		return "banded"
	default:
		return "auto"
	}
}

// asciiPeq bounds the directly indexed region of the Myers
// pattern-equality table; runes past it go to the small spill list.
const asciiPeq = 128

// myersMax is the largest pattern (in runes) one uint64 DP column can
// encode.
const myersMax = 64

// Scratch is a per-worker arena for the string kernels: the rune decode
// buffers for the string entry points, the Myers pattern-equality table
// (epoch-stamped so it never needs clearing), and the banded-DP row for
// the long-string fallback. A Scratch makes every kernel call
// allocation-free after warm-up.
//
// A Scratch must not be used from more than one goroutine at a time;
// each worker owns one (engine.Matcher), and the package-level entry
// points borrow one from an internal pool.
type Scratch struct {
	ra, rb []rune // decode buffers for the string entry points

	// Myers pattern-equality table. peq[c] is only meaningful when
	// stamp[c] == epoch, so rebuilding for a new pattern is O(m), not
	// O(alphabet).
	peq   [asciiPeq]uint64
	stamp [asciiPeq]uint32
	epoch uint32
	// Spill entries for pattern runes >= asciiPeq (linear-probed; a
	// pattern has at most 64 of them).
	xkeys []rune
	xvals []uint64

	// row is the banded-DP scratch row for the > 64-rune fallback.
	row []int
}

// NewScratch returns a fresh arena. Callers that loop over many pairs
// (workers, benchmarks) should create one and reuse it.
func NewScratch() *Scratch { return &Scratch{} }

var scratchPool = sync.Pool{New: func() any { return NewScratch() }}

func getScratch() *Scratch  { return scratchPool.Get().(*Scratch) }
func putScratch(s *Scratch) { scratchPool.Put(s) }

// appendRunes decodes the comparison symbols of s into buf's backing
// array (buf is reset to length 0 first): runes for valid UTF-8, raw
// bytes otherwise — the same symbol model as Runes, without the
// per-call allocation.
func appendRunes(buf []rune, s string) []rune {
	buf = buf[:0]
	i := 0
	for ; i < len(s); i++ {
		c := s[i]
		if c >= utf8.RuneSelf {
			break
		}
		buf = append(buf, rune(c))
	}
	if i == len(s) {
		return buf
	}
	if utf8.ValidString(s) {
		for _, r := range s[i:] {
			buf = append(buf, r)
		}
		return buf
	}
	buf = buf[:0]
	for i = 0; i < len(s); i++ {
		buf = append(buf, rune(s[i]))
	}
	return buf
}

// RuneMask returns the 64-bit alphabet signature of a symbol slice:
// every distinct rune hashes onto one of 64 bits. Masks feed the
// pre-filter of the bounded predicate — see MaskLowerBound.
func RuneMask(rs []rune) uint64 {
	var m uint64
	for _, r := range rs {
		m |= 1 << (uint32(r) * 2654435761 >> 26)
	}
	return m
}

// MaskLowerBound returns a lower bound on the edit distance between two
// strings with alphabet signatures ma and mb. A bit set in ma and clear
// in mb certifies a symbol class occurring in a but nowhere in b (both
// masks use the same hash), and each such class needs at least one edit
// of its own; symmetrically for mb &^ ma. The bound is sound under hash
// collisions because a collision can only clear a bit of the
// difference, never set one.
func MaskLowerBound(ma, mb uint64) int {
	d := bits.OnesCount64(ma &^ mb)
	if d2 := bits.OnesCount64(mb &^ ma); d2 > d {
		d = d2
	}
	return d
}

// Levenshtein is the exact edit distance through this arena — the
// zero-allocation form of the package-level Levenshtein.
func (sc *Scratch) Levenshtein(a, b string) int {
	obs.GlobalAdd(obs.CtrLevenshteinCalls, 1)
	if a == b {
		return 0
	}
	sc.ra = appendRunes(sc.ra, a)
	sc.rb = appendRunes(sc.rb, b)
	return sc.distRunes(sc.ra, sc.rb)
}

// LevenshteinRunes is the exact edit distance over pre-decoded symbol
// slices through this arena.
func (sc *Scratch) LevenshteinRunes(ra, rb []rune) int {
	obs.GlobalAdd(obs.CtrLevenshteinCalls, 1)
	return sc.distRunes(ra, rb)
}

// Within reports whether the edit distance between a and b is at most
// max — the zero-allocation form of the package-level
// LevenshteinWithin, including the length and alphabet-mask pre-filters.
func (sc *Scratch) Within(a, b string, max int) bool {
	obs.GlobalAdd(obs.CtrLevenshteinCalls, 1)
	if max < 0 {
		return false
	}
	if a == b {
		return true
	}
	sc.ra = appendRunes(sc.ra, a)
	sc.rb = appendRunes(sc.rb, b)
	return sc.withinRunes(sc.ra, sc.rb, 0, 0, false, max)
}

// WithinRunes is Within over pre-decoded symbol slices; the alphabet
// masks are computed on the fly.
func (sc *Scratch) WithinRunes(ra, rb []rune, max int) bool {
	obs.GlobalAdd(obs.CtrLevenshteinCalls, 1)
	if max < 0 {
		return false
	}
	return sc.withinRunes(ra, rb, 0, 0, false, max)
}

// WithinRunesMasked is WithinRunes with caller-supplied alphabet masks
// (RuneMask), for callers — the engine's interner — that precompute the
// signature once per distinct string.
func (sc *Scratch) WithinRunesMasked(ra, rb []rune, ma, mb uint64, max int) bool {
	obs.GlobalAdd(obs.CtrLevenshteinCalls, 1)
	if max < 0 {
		return false
	}
	return sc.withinRunes(ra, rb, ma, mb, true, max)
}

// distRunes dispatches the exact-distance kernels: Myers whenever the
// shorter side fits one word (and the banded DP is not forced), the
// banded DP otherwise.
func (sc *Scratch) distRunes(ra, rb []rune) int {
	if len(ra) < len(rb) {
		ra, rb = rb, ra
	}
	if len(rb) == 0 {
		return len(ra)
	}
	if len(rb) > myersMax || ActiveKernel() == KernelBanded {
		obs.GlobalAdd(obs.CtrLevenshteinBanded, 1)
		return sc.bandedDistance(ra, rb)
	}
	obs.GlobalAdd(obs.CtrLevenshteinMyers, 1)
	return sc.myersDistance(rb, ra)
}

// withinRunes dispatches the bounded predicate: length pre-filter,
// alphabet-mask pre-filter, then the threshold-aware kernel.
func (sc *Scratch) withinRunes(ra, rb []rune, ma, mb uint64, haveMasks bool, max int) bool {
	if len(ra) < len(rb) {
		ra, rb = rb, ra
		ma, mb = mb, ma
	}
	if len(ra)-len(rb) > max {
		// Length difference alone exceeds the bound: no DP needed.
		obs.GlobalAdd(obs.CtrLevenshteinEarlyExits, 1)
		return false
	}
	if len(rb) == 0 {
		// The length pre-filter already certified len(ra) <= max.
		return true
	}
	if !haveMasks {
		ma, mb = RuneMask(ra), RuneMask(rb)
	}
	if MaskLowerBound(ma, mb) > max {
		// Some symbol classes of one side are provably absent from the
		// other: the distance is at least one edit per such class.
		obs.GlobalAdd(obs.CtrLevenshteinMaskRejects, 1)
		obs.GlobalAdd(obs.CtrLevenshteinEarlyExits, 1)
		return false
	}
	if len(rb) > myersMax || ActiveKernel() == KernelBanded {
		obs.GlobalAdd(obs.CtrLevenshteinBanded, 1)
		return sc.bandedWithin(ra, rb, max)
	}
	obs.GlobalAdd(obs.CtrLevenshteinMyers, 1)
	return sc.myersWithin(rb, ra, max)
}

// bandedDistance is the classic two-row dynamic program with the
// shorter string on the columns (scratch space O(min(|a|,|b|)), served
// from the arena) — the exact-distance fallback for patterns over 64
// runes and the reference kernel under KernelBanded. len(ra) >= len(rb)
// and len(rb) > 0 are the caller's invariants.
func (sc *Scratch) bandedDistance(ra, rb []rune) int {
	prev := sc.dpRow(len(rb) + 1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		diag := prev[0] // prev[i-1][j-1]
		prev[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 0
			if ra[i-1] != rb[j-1] {
				cost = 1
			}
			next := min3(prev[j]+1, prev[j-1]+1, diag+cost)
			diag = prev[j]
			prev[j] = next
		}
	}
	return prev[len(rb)]
}

// bandedWithin is the threshold-aware banded DP: cells provably above
// the bound saturate at inf, and the scan aborts as soon as a whole row
// exceeds the bound. Same caller invariants as bandedDistance.
func (sc *Scratch) bandedWithin(ra, rb []rune, max int) bool {
	const inf = 1 << 30
	prev := sc.dpRow(len(rb) + 1)
	for j := range prev {
		if j <= max {
			prev[j] = j
		} else {
			prev[j] = inf
		}
	}
	for i := 1; i <= len(ra); i++ {
		diag := prev[0]
		if i <= max {
			prev[0] = i
		} else {
			prev[0] = inf
		}
		rowMin := prev[0]
		for j := 1; j <= len(rb); j++ {
			cost := 0
			if ra[i-1] != rb[j-1] {
				cost = 1
			}
			next := min3(prev[j]+1, prev[j-1]+1, diag+cost)
			if next > inf {
				next = inf
			}
			diag = prev[j]
			prev[j] = next
			if next < rowMin {
				rowMin = next
			}
		}
		if rowMin > max {
			// Whole DP row above the bound: the distance can only grow.
			obs.GlobalAdd(obs.CtrLevenshteinEarlyExits, 1)
			return false
		}
	}
	return prev[len(rb)] <= max
}

// dpRow returns the arena's DP row grown to at least n entries.
func (sc *Scratch) dpRow(n int) []int {
	if cap(sc.row) < n {
		sc.row = make([]int, n)
	}
	return sc.row[:n]
}
