package holoclean

import (
	"context"
	"testing"

	"repro/internal/dataset"
	"repro/internal/dc"
)

func citySample(t testing.TB) *dataset.Relation {
	t.Helper()
	rel, err := dataset.ReadCSVString(`Zip,City,State
10001,NYC,NY
10001,NYC,NY
10001,NYC,NY
90210,LA,CA
90210,LA,CA
10001,,NY
`)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{MaxDomain: -1}); err == nil {
		t.Error("negative MaxDomain accepted")
	}
	if _, err := New(Config{MinConfidence: 1.5}); err == nil {
		t.Error("MinConfidence > 1 accepted")
	}
	im, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if im.Name() != "Holoclean" {
		t.Errorf("Name = %q", im.Name())
	}
}

func TestImputesFromCooccurrence(t *testing.T) {
	rel := citySample(t)
	im, err := New(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	out, err := im.Impute(context.Background(), rel)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Get(5, 1); got.Str() != "NYC" {
		t.Errorf("imputed City = %q, want NYC (co-occurs with Zip 10001 and State NY)", got.Str())
	}
	if !rel.Get(5, 1).IsNull() {
		t.Error("input mutated")
	}
}

func TestDCsSteerInference(t *testing.T) {
	// Without DCs the frequency prior favours the majority value "red";
	// the DC (Key = -> Color !=) forbids disagreeing with the same-Key
	// row, steering the repair to "blue".
	rel, err := dataset.ReadCSVString(`Key,Color,Pad
k1,red,p
k2,red,p
k3,red,p
k4,blue,q
k4,,q
`)
	if err != nil {
		t.Fatal(err)
	}
	d := dc.MustNew(dc.Predicate{Attr: 0, Op: dc.Eq}, dc.Predicate{Attr: 1, Op: dc.Neq})
	im, err := New(Config{DCs: []*dc.DC{d}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	out, err := im.Impute(context.Background(), rel)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Get(4, 1); got.Str() != "blue" {
		t.Errorf("imputed Color = %q, want blue (DC-consistent)", got.Str())
	}
}

func TestMinConfidenceAbstains(t *testing.T) {
	// Two equally plausible values -> confidence ~0.5; a 0.9 threshold
	// must abstain.
	rel, err := dataset.ReadCSVString(`A,B
x,1
x,2
y,1
y,2
x,
`)
	if err != nil {
		t.Fatal(err)
	}
	strict, err := New(Config{MinConfidence: 0.9, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	out, err := strict.Impute(context.Background(), rel)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Get(4, 1).IsNull() {
		t.Errorf("imputed %v despite low confidence", out.Get(4, 1))
	}
	always, err := New(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	out2, err := always.Impute(context.Background(), rel)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Get(4, 1).IsNull() {
		t.Error("zero threshold should always impute")
	}
}

func TestEmptyDomainLeavesMissing(t *testing.T) {
	// Attribute B has no observed value at all.
	rel, err := dataset.ReadCSVString("A,B\nx,\ny,\n")
	if err != nil {
		t.Fatal(err)
	}
	im, err := New(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	out, err := im.Impute(context.Background(), rel)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Get(0, 1).IsNull() || !out.Get(1, 1).IsNull() {
		t.Error("imputed from an empty domain")
	}
}

func TestDeterminismWithFixedSeed(t *testing.T) {
	rel := citySample(t)
	im, err := New(Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	a, err := im.Impute(context.Background(), rel)
	if err != nil {
		t.Fatal(err)
	}
	b, err := im.Impute(context.Background(), rel)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("same-seed runs diverged")
	}
}

func TestWeightLearningImprovesSignal(t *testing.T) {
	// After training on a strongly co-occurring dataset the co-occurrence
	// weight must stay positive and finite.
	rel := citySample(t)
	im, err := New(Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	stats := buildStats(rel)
	w := im.learnWeights(rel, stats)
	if len(w) != featureCount {
		t.Fatalf("weights = %v", w)
	}
	for i, wi := range w {
		if wi != wi || wi > 1e6 || wi < -1e6 { // NaN or exploded
			t.Errorf("weight %d = %v", i, wi)
		}
	}
}

func TestDomainCapAndRanking(t *testing.T) {
	rel := citySample(t)
	im, err := New(Config{MaxDomain: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	stats := buildStats(rel)
	cands := im.domain(rel, stats, 5, 1)
	if len(cands) != 1 {
		t.Fatalf("domain = %v, want 1 candidate", cands)
	}
	if cands[0].Str() != "NYC" {
		t.Errorf("top candidate = %q, want NYC", cands[0].Str())
	}
}

func TestCoocScoreAndFrequency(t *testing.T) {
	rel := citySample(t)
	stats := buildStats(rel)
	city := 1
	nyc := dataset.NewString("NYC")
	la := dataset.NewString("LA")
	// Row 5 observes Zip=10001 and State=NY: P(NYC|10001)=3/4 wait — zip
	// 10001 appears 4 times (rows 0,1,2,5) but row 5's City is null, so
	// the pair count is 3 and the marginal count of Zip=10001 is 4.
	s := stats.coocScore(rel.Row(5), city, nyc)
	if s <= stats.coocScore(rel.Row(5), city, la) {
		t.Error("NYC must outscore LA for a 10001/NY tuple")
	}
	if f := stats.frequency(city, nyc); f != 3.0/5.0 {
		t.Errorf("frequency(NYC) = %v, want 0.6", f)
	}
}

func TestSoftmax(t *testing.T) {
	p := softmax([]float64{0, 0})
	if p[0] != 0.5 || p[1] != 0.5 {
		t.Errorf("softmax uniform = %v", p)
	}
	p = softmax([]float64{1000, 0})
	if p[0] < 0.999 {
		t.Errorf("softmax extreme = %v (overflow?)", p)
	}
	sum := 0.0
	for _, v := range softmax([]float64{1, 2, 3}) {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("softmax sum = %v", sum)
	}
}
