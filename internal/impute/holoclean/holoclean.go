// Package holoclean reimplements, in Go and scoped to missing-value
// imputation, the holistic probabilistic repair approach of Rekatsinas et
// al. [20] (HoloClean, VLDB 2017) — the machine-learning baseline of the
// paper's comparative evaluation.
//
// The pipeline mirrors HoloClean's imputation path:
//
//	domain generation — candidate values for a cell are active-domain
//	    values of the attribute that co-occur with the tuple's observed
//	    values, capped to the strongest co-occurrences;
//	featurization — each (cell, candidate) pair gets co-occurrence,
//	    frequency-prior, and denial-constraint-violation features;
//	weight learning — feature weights are learned from the observed
//	    cells by empirical-risk minimization on a softmax pseudo-
//	    likelihood (hide an observed cell, make the model rank its true
//	    value first);
//	inference — each missing cell takes its MAP candidate, optionally
//	    abstaining below a confidence threshold.
package holoclean

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/dataset"
	"repro/internal/dc"
)

// Config tunes the imputer.
type Config struct {
	// DCs are the denial constraints whose violations featurize repairs.
	DCs []*dc.DC
	// MaxDomain caps each cell's candidate domain. Zero means 20.
	MaxDomain int
	// TrainSamples is how many observed cells are hidden to learn the
	// feature weights. Zero means 200.
	TrainSamples int
	// Epochs is the number of SGD passes. Zero means 3.
	Epochs int
	// LearningRate for SGD. Zero means 0.1.
	LearningRate float64
	// MinConfidence makes inference abstain when the MAP candidate's
	// softmax probability is below the threshold. Zero imputes always.
	MinConfidence float64
	// Seed drives training-cell sampling.
	Seed int64
}

const featureCount = 3 // co-occurrence, frequency prior, DC violations

// Imputer is the HoloClean-style method.
type Imputer struct {
	cfg Config
}

// New returns a HoloClean-style imputer.
func New(cfg Config) (*Imputer, error) {
	if cfg.MaxDomain == 0 {
		cfg.MaxDomain = 20
	}
	if cfg.MaxDomain < 0 {
		return nil, fmt.Errorf("holoclean: negative MaxDomain")
	}
	if cfg.TrainSamples == 0 {
		cfg.TrainSamples = 200
	}
	if cfg.Epochs == 0 {
		cfg.Epochs = 3
	}
	if cfg.LearningRate == 0 {
		cfg.LearningRate = 0.1
	}
	if cfg.MinConfidence < 0 || cfg.MinConfidence > 1 {
		return nil, fmt.Errorf("holoclean: MinConfidence %v outside [0,1]", cfg.MinConfidence)
	}
	return &Imputer{cfg: cfg}, nil
}

// Name implements impute.Method.
func (im *Imputer) Name() string { return "Holoclean" }

// Impute implements impute.Method: the context is checked
// per inferred cell (training is bounded by TrainSamples and runs
// uninterrupted).
func (im *Imputer) Impute(ctx context.Context, rel *dataset.Relation) (*dataset.Relation, error) {
	out := rel.Clone()
	stats := buildStats(rel)
	weights := im.learnWeights(rel, stats)

	for _, cell := range rel.MissingCells() {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		cands := im.domain(rel, stats, cell.Row, cell.Attr)
		if len(cands) == 0 {
			continue
		}
		value, confidence := im.infer(out, stats, weights, cell, cands)
		if value.IsNull() {
			continue
		}
		if im.cfg.MinConfidence > 0 && confidence < im.cfg.MinConfidence {
			continue
		}
		out.Set(cell.Row, cell.Attr, value)
	}
	return out, nil
}

// infer scores each candidate with the learned weights and returns the
// MAP value and its softmax probability.
func (im *Imputer) infer(work *dataset.Relation, stats *coStats, weights []float64,
	cell dataset.Cell, cands []dataset.Value) (dataset.Value, float64) {

	scores := make([]float64, len(cands))
	for i, v := range cands {
		f := im.features(work, stats, cell, v)
		for k := 0; k < featureCount; k++ {
			scores[i] += weights[k] * f[k]
		}
	}
	probs := softmax(scores)
	best := 0
	for i := range probs {
		if probs[i] > probs[best] {
			best = i
		}
	}
	return cands[best], probs[best]
}

// features builds the candidate's feature vector at the cell.
func (im *Imputer) features(work *dataset.Relation, stats *coStats, cell dataset.Cell, v dataset.Value) [featureCount]float64 {
	var f [featureCount]float64
	f[0] = stats.coocScore(work.Row(cell.Row), cell.Attr, v)
	f[1] = stats.frequency(cell.Attr, v)
	f[2] = im.violationPenalty(work, cell, v)
	return f
}

// violationPenalty counts (negated, normalized) the DC violations the
// assignment would introduce for the cell's tuple.
func (im *Imputer) violationPenalty(work *dataset.Relation, cell dataset.Cell, v dataset.Value) float64 {
	if len(im.cfg.DCs) == 0 {
		return 0
	}
	old := work.Get(cell.Row, cell.Attr)
	work.Set(cell.Row, cell.Attr, v)
	violations := 0
	for _, d := range im.cfg.DCs {
		if !d.InvolvesAttr(cell.Attr) {
			continue
		}
		violations += d.ViolationsInvolving(work, cell.Row)
	}
	work.Set(cell.Row, cell.Attr, old)
	return -float64(violations) / float64(work.Len())
}

// domain generates the candidate values for a cell: active-domain values
// of the attribute ranked by their co-occurrence with the tuple's
// observed cells, falling back to global frequency when the tuple has no
// informative neighbours.
func (im *Imputer) domain(rel *dataset.Relation, stats *coStats, row, attr int) []dataset.Value {
	t := rel.Row(row)
	type scored struct {
		v     dataset.Value
		score float64
	}
	var all []scored
	for _, v := range stats.domains[attr] {
		s := stats.coocScore(t, attr, v)
		if s == 0 {
			s = stats.frequency(attr, v) * 1e-3 // frequency fallback, dominated by any co-occurrence
		}
		all = append(all, scored{v: v, score: s})
	}
	sort.SliceStable(all, func(a, b int) bool { return all[a].score > all[b].score })
	if len(all) > im.cfg.MaxDomain {
		all = all[:im.cfg.MaxDomain]
	}
	out := make([]dataset.Value, len(all))
	for i, s := range all {
		out[i] = s.v
	}
	return out
}

// learnWeights hides sampled observed cells and fits the softmax weights
// so the true value ranks first among the cell's candidates.
func (im *Imputer) learnWeights(rel *dataset.Relation, stats *coStats) []float64 {
	weights := make([]float64, featureCount)
	for i := range weights {
		weights[i] = 1 // co-occurrence, frequency and consistency all start helpful
	}
	type example struct {
		cell  dataset.Cell
		true_ dataset.Value
	}
	rng := rand.New(rand.NewSource(im.cfg.Seed))
	var observed []dataset.Cell
	for i := 0; i < rel.Len(); i++ {
		for j := 0; j < rel.Schema().Len(); j++ {
			if !rel.Get(i, j).IsNull() {
				observed = append(observed, dataset.Cell{Row: i, Attr: j})
			}
		}
	}
	if len(observed) == 0 {
		return weights
	}
	rng.Shuffle(len(observed), func(a, b int) { observed[a], observed[b] = observed[b], observed[a] })
	if len(observed) > im.cfg.TrainSamples {
		observed = observed[:im.cfg.TrainSamples]
	}
	var examples []example
	for _, c := range observed {
		examples = append(examples, example{cell: c, true_: rel.Get(c.Row, c.Attr)})
	}

	work := rel.Clone()
	for epoch := 0; epoch < im.cfg.Epochs; epoch++ {
		for _, ex := range examples {
			work.Set(ex.cell.Row, ex.cell.Attr, dataset.Null)
			cands := im.domain(work, stats, ex.cell.Row, ex.cell.Attr)
			trueIdx := -1
			for i, v := range cands {
				if v.Equal(ex.true_) {
					trueIdx = i
					break
				}
			}
			if trueIdx >= 0 && len(cands) > 1 {
				im.sgdStep(work, stats, weights, ex.cell, cands, trueIdx)
			}
			work.Set(ex.cell.Row, ex.cell.Attr, ex.true_)
		}
	}
	return weights
}

// sgdStep applies one softmax cross-entropy gradient step.
func (im *Imputer) sgdStep(work *dataset.Relation, stats *coStats, weights []float64,
	cell dataset.Cell, cands []dataset.Value, trueIdx int) {

	feats := make([][featureCount]float64, len(cands))
	scores := make([]float64, len(cands))
	for i, v := range cands {
		feats[i] = im.features(work, stats, cell, v)
		for k := 0; k < featureCount; k++ {
			scores[i] += weights[k] * feats[i][k]
		}
	}
	probs := softmax(scores)
	for k := 0; k < featureCount; k++ {
		grad := feats[trueIdx][k]
		for i := range cands {
			grad -= probs[i] * feats[i][k]
		}
		weights[k] += im.cfg.LearningRate * grad
	}
}

func softmax(scores []float64) []float64 {
	max := scores[0]
	for _, s := range scores[1:] {
		if s > max {
			max = s
		}
	}
	sum := 0.0
	out := make([]float64, len(scores))
	for i, s := range scores {
		out[i] = math.Exp(s - max)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// coStats holds the co-occurrence and frequency statistics of the
// observed data.
type coStats struct {
	n       int
	domains [][]dataset.Value // active domain per attribute
	// count[A][value] = occurrences of A=value.
	count []map[string]int
	// pair[B*m+A]["b\x00a"] = co-occurrences of (B=b, A=a), B != A.
	pair []map[string]int
	m    int
}

func buildStats(rel *dataset.Relation) *coStats {
	m := rel.Schema().Len()
	s := &coStats{
		n:       rel.Len(),
		domains: make([][]dataset.Value, m),
		count:   make([]map[string]int, m),
		pair:    make([]map[string]int, m*m),
		m:       m,
	}
	for a := 0; a < m; a++ {
		s.domains[a] = rel.ActiveDomain(a)
		s.count[a] = map[string]int{}
	}
	for i := 0; i < rel.Len(); i++ {
		t := rel.Row(i)
		for a := 0; a < m; a++ {
			if t[a].IsNull() {
				continue
			}
			s.count[a][t[a].String()]++
			for b := 0; b < m; b++ {
				if b == a || t[b].IsNull() {
					continue
				}
				idx := b*m + a
				if s.pair[idx] == nil {
					s.pair[idx] = map[string]int{}
				}
				s.pair[idx][t[b].String()+"\x00"+t[a].String()]++
			}
		}
	}
	return s
}

// coocScore is the mean over the tuple's observed attributes B of the
// conditional probability P(A=v | B=t[B]).
func (s *coStats) coocScore(t dataset.Tuple, attr int, v dataset.Value) float64 {
	sum, cnt := 0.0, 0
	vs := v.String()
	for b := range t {
		if b == attr || t[b].IsNull() {
			continue
		}
		bs := t[b].String()
		denom := s.count[b][bs]
		if denom == 0 {
			continue
		}
		pairs := s.pair[b*s.m+attr]
		num := 0
		if pairs != nil {
			num = pairs[bs+"\x00"+vs]
		}
		sum += float64(num) / float64(denom)
		cnt++
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

// frequency is the global empirical probability of A=v among observed
// cells of A.
func (s *coStats) frequency(attr int, v dataset.Value) float64 {
	total := 0
	for _, c := range s.count[attr] {
		total += c
	}
	if total == 0 {
		return 0
	}
	return float64(s.count[attr][v.String()]) / float64(total)
}
