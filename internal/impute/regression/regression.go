// Package regression implements a local linear-regression imputer in the
// spirit of Zhang et al. [26] ("Learning individual models for
// imputation", ICDE 2019), the regression class of the paper's related
// work: instead of one global model, each incomplete tuple gets its own
// model, fitted by ordinary least squares on the K complete tuples most
// similar to it. The method addresses the two problems [26] names —
// sparsity (not enough globally complete tuples) is mitigated by fitting
// on tuples complete *for the needed attributes* only, and data
// heterogeneity by the per-tuple locality of the fit.
//
// Only numeric attributes are imputable; the predictors are the numeric
// attributes observed on the incomplete tuple.
package regression

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/dataset"
)

// Config tunes the imputer.
type Config struct {
	// K is the neighbourhood size each individual model is fitted on.
	// Zero means 10.
	K int
	// Ridge is the L2 regularizer added to the normal equations, keeping
	// tiny neighbourhoods well-posed. Zero means 1e-6.
	Ridge float64
}

// Imputer is the local-regression method.
type Imputer struct {
	cfg Config
}

// New returns a local linear-regression imputer.
func New(cfg Config) (*Imputer, error) {
	if cfg.K == 0 {
		cfg.K = 10
	}
	if cfg.K < 2 {
		return nil, fmt.Errorf("regression: K %d too small to fit a model", cfg.K)
	}
	if cfg.Ridge == 0 {
		cfg.Ridge = 1e-6
	}
	if cfg.Ridge < 0 {
		return nil, fmt.Errorf("regression: negative ridge %v", cfg.Ridge)
	}
	return &Imputer{cfg: cfg}, nil
}

// Name implements impute.Method.
func (im *Imputer) Name() string { return fmt.Sprintf("LocalLR(k=%d)", im.cfg.K) }

// Impute implements impute.Method: the context is checked
// per fitted cell.
func (im *Imputer) Impute(ctx context.Context, rel *dataset.Relation) (*dataset.Relation, error) {
	out := rel.Clone()
	m := rel.Schema().Len()

	numeric := make([]bool, m)
	for a := 0; a < m; a++ {
		numeric[a] = rel.Schema().Attr(a).Kind.Numeric()
	}

	for _, cell := range rel.MissingCells() {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		if !numeric[cell.Attr] {
			continue
		}
		t := rel.Row(cell.Row)
		// Predictors: numeric attributes observed on t, target excluded.
		var preds []int
		for a := 0; a < m; a++ {
			if a != cell.Attr && numeric[a] && !t[a].IsNull() {
				preds = append(preds, a)
			}
		}
		v, ok := im.fitAndPredict(rel, cell.Row, cell.Attr, preds)
		if !ok {
			continue
		}
		if rel.Schema().Attr(cell.Attr).Kind == dataset.KindInt {
			out.Set(cell.Row, cell.Attr, dataset.NewInt(int64(math.Round(v))))
		} else {
			out.Set(cell.Row, cell.Attr, dataset.NewFloat(v))
		}
	}
	return out, nil
}

// fitAndPredict fits the individual model for one cell on its K nearest
// training tuples and evaluates it at the incomplete tuple.
func (im *Imputer) fitAndPredict(rel *dataset.Relation, row, target int, preds []int) (float64, bool) {
	t := rel.Row(row)

	// Training pool: tuples with the target and every predictor present.
	type cand struct {
		row  int
		dist float64
	}
	var pool []cand
	for j := 0; j < rel.Len(); j++ {
		if j == row {
			continue
		}
		tj := rel.Row(j)
		if tj[target].IsNull() {
			continue
		}
		usable, dist := true, 0.0
		for _, a := range preds {
			if tj[a].IsNull() {
				usable = false
				break
			}
			d := t[a].Float() - tj[a].Float()
			dist += d * d
		}
		if usable {
			pool = append(pool, cand{row: j, dist: dist})
		}
	}
	if len(pool) == 0 {
		return 0, false
	}
	sort.Slice(pool, func(a, b int) bool {
		if pool[a].dist != pool[b].dist {
			return pool[a].dist < pool[b].dist
		}
		return pool[a].row < pool[b].row
	})
	if len(pool) > im.cfg.K {
		pool = pool[:im.cfg.K]
	}

	// With no predictors the individual model degenerates to the local
	// mean of the neighbourhood.
	if len(preds) == 0 {
		sum := 0.0
		for _, c := range pool {
			sum += rel.Get(c.row, target).Float()
		}
		return sum / float64(len(pool)), true
	}

	// OLS with intercept via ridge-stabilized normal equations:
	// (XᵀX + λI) w = Xᵀy.
	p := len(preds) + 1
	xtx := make([][]float64, p)
	for i := range xtx {
		xtx[i] = make([]float64, p)
	}
	xty := make([]float64, p)
	rowVec := make([]float64, p)
	for _, c := range pool {
		tj := rel.Row(c.row)
		rowVec[0] = 1
		for i, a := range preds {
			rowVec[i+1] = tj[a].Float()
		}
		y := tj[target].Float()
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				xtx[i][j] += rowVec[i] * rowVec[j]
			}
			xty[i] += rowVec[i] * y
		}
	}
	for i := 0; i < p; i++ {
		xtx[i][i] += im.cfg.Ridge
	}
	w, ok := solve(xtx, xty)
	if !ok {
		return 0, false
	}
	pred := w[0]
	for i, a := range preds {
		pred += w[i+1] * t[a].Float()
	}
	if math.IsNaN(pred) || math.IsInf(pred, 0) {
		return 0, false
	}
	return pred, true
}

// solve performs Gaussian elimination with partial pivoting on a copy of
// the system. It reports false on a (numerically) singular matrix.
func solve(a [][]float64, b []float64) ([]float64, bool) {
	n := len(b)
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64(nil), a[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return nil, false
		}
		m[col], m[pivot] = m[pivot], m[col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = m[i][n] / m[i][i]
	}
	return x, true
}
