package regression

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{K: 1}); err == nil {
		t.Error("K=1 accepted")
	}
	if _, err := New(Config{Ridge: -1}); err == nil {
		t.Error("negative ridge accepted")
	}
	im, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if im.cfg.K != 10 || im.Name() != "LocalLR(k=10)" {
		t.Errorf("defaults: %+v, name %q", im.cfg, im.Name())
	}
}

func TestRecoversExactLinearRelation(t *testing.T) {
	// y = 3x + 2 exactly: the individual model must recover the missing
	// y to machine-ish precision.
	var doc = "X,Y\n"
	for x := 1; x <= 12; x++ {
		doc += fmt.Sprintf("%d.0,%d.0\n", x, 3*x+2)
	}
	doc += "20.0,\n"
	rel, err := dataset.ReadCSVString(doc)
	if err != nil {
		t.Fatal(err)
	}
	im, err := New(Config{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	out, err := im.Impute(context.Background(), rel)
	if err != nil {
		t.Fatal(err)
	}
	got := out.Get(12, 1)
	if got.IsNull() {
		t.Fatal("not imputed")
	}
	if math.Abs(got.Float()-62) > 0.01 {
		t.Errorf("y(20) = %v, want 62", got.Float())
	}
}

func TestLocalityBeatsGlobalModel(t *testing.T) {
	// Two regimes (the heterogeneity problem of [26]): y = x for x<10,
	// y = -x + 100 for x>=90. A tuple near the second regime must be
	// predicted by its local model, not a global average fit.
	doc := "X,Y\n"
	for x := 1; x <= 8; x++ {
		doc += fmt.Sprintf("%d.0,%d.0\n", x, x)
	}
	for x := 90; x <= 97; x++ {
		doc += fmt.Sprintf("%d.0,%d.0\n", x, 100-x)
	}
	doc += "95.0,\n"
	rel, err := dataset.ReadCSVString(doc)
	if err != nil {
		t.Fatal(err)
	}
	im, err := New(Config{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	out, err := im.Impute(context.Background(), rel)
	if err != nil {
		t.Fatal(err)
	}
	got := out.Get(16, 1).Float()
	if math.Abs(got-5) > 1 {
		t.Errorf("y(95) = %v, want ≈5 (the local regime)", got)
	}
}

func TestMultiPredictor(t *testing.T) {
	// y = 2a + 3b - 1 with noise-free data and two predictors.
	rng := rand.New(rand.NewSource(1))
	doc := "A,B,Y\n"
	for i := 0; i < 20; i++ {
		a, b := rng.Float64()*10, rng.Float64()*10
		doc += fmt.Sprintf("%g,%g,%g\n", a, b, 2*a+3*b-1)
	}
	doc += "5.0,5.0,\n"
	rel, err := dataset.ReadCSVString(doc)
	if err != nil {
		t.Fatal(err)
	}
	im, err := New(Config{K: 12})
	if err != nil {
		t.Fatal(err)
	}
	out, err := im.Impute(context.Background(), rel)
	if err != nil {
		t.Fatal(err)
	}
	got := out.Get(20, 2).Float()
	if math.Abs(got-24) > 0.5 {
		t.Errorf("y(5,5) = %v, want ≈24", got)
	}
}

func TestIntTargetRounds(t *testing.T) {
	rel, err := dataset.ReadCSVString("X,Y\n1.0,10\n2.0,20\n3.0,30\n4.0,\n")
	if err != nil {
		t.Fatal(err)
	}
	im, err := New(Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	out, err := im.Impute(context.Background(), rel)
	if err != nil {
		t.Fatal(err)
	}
	got := out.Get(3, 1)
	if got.Kind() != dataset.KindInt {
		t.Errorf("kind = %v", got.Kind())
	}
	if got.Int() < 38 || got.Int() > 42 {
		t.Errorf("y(4) = %v, want ≈40", got.Int())
	}
}

func TestStringsAndNoDonorsSkipped(t *testing.T) {
	rel, err := dataset.ReadCSVString("S,Y\nabc,\nxyz,2.0\n")
	if err != nil {
		t.Fatal(err)
	}
	im, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := im.Impute(context.Background(), rel)
	if err != nil {
		t.Fatal(err)
	}
	// Y row 0: no numeric predictors observed -> local-mean fallback
	// from the single donor.
	if out.Get(0, 1).IsNull() {
		t.Error("local-mean fallback did not fire")
	}
	// Missing string cells are not imputable by regression.
	rel2, err := dataset.ReadCSVString("S,Y\n,1.0\nxyz,2.0\n")
	if err != nil {
		t.Fatal(err)
	}
	out2, err := im.Impute(context.Background(), rel2)
	if err != nil {
		t.Fatal(err)
	}
	if !out2.Get(0, 0).IsNull() {
		t.Error("imputed a string cell")
	}
}

func TestSolve(t *testing.T) {
	// 2x2 well-posed system.
	x, ok := solve([][]float64{{2, 1}, {1, 3}}, []float64{5, 10})
	if !ok {
		t.Fatal("solve failed")
	}
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Errorf("x = %v, want [1 3]", x)
	}
	// Singular system.
	if _, ok := solve([][]float64{{1, 1}, {1, 1}}, []float64{1, 2}); ok {
		t.Error("singular system solved")
	}
}

func TestInputNotMutated(t *testing.T) {
	rel, err := dataset.ReadCSVString("X,Y\n1.0,2.0\n2.0,\n")
	if err != nil {
		t.Fatal(err)
	}
	im, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := im.Impute(context.Background(), rel); err != nil {
		t.Fatal(err)
	}
	if !rel.Get(1, 1).IsNull() {
		t.Error("input mutated")
	}
}
