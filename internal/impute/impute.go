// Package impute defines the interface every imputation method in this
// repository implements — RENUVER itself and the three comparison
// baselines of Sec. 6.3 (grey-based kNN [14], Derand [23], and the
// Holoclean-style probabilistic repairer [20]).
package impute

import (
	"context"

	"repro/internal/dataset"
)

// Method fills missing values in a relation instance. Implementations
// never mutate the input; they return an imputed clone. Cells a method
// cannot (or refuses to) fill stay null.
type Method interface {
	// Name identifies the method in experiment reports.
	Name() string
	// Impute returns the imputed clone of rel.
	Impute(rel *dataset.Relation) (*dataset.Relation, error)
}

// ContextMethod is optionally implemented by methods that support
// cooperative cancellation. A cancelled run returns the partial result
// it had produced together with the context's error; the evaluation
// harness uses this to enforce time budgets without abandoning
// goroutines.
type ContextMethod interface {
	Method
	ImputeContext(ctx context.Context, rel *dataset.Relation) (*dataset.Relation, error)
}
