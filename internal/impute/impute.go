// Package impute defines the interface every imputation method in this
// repository implements — RENUVER itself and the three comparison
// baselines of Sec. 6.3 (grey-based kNN [14], Derand [23], and the
// Holoclean-style probabilistic repairer [20]).
package impute

import (
	"context"

	"repro/internal/dataset"
)

// Method fills missing values in a relation instance. Implementations
// never mutate the input; they return an imputed clone. Cells a method
// cannot (or refuses to) fill stay null.
//
// Every method takes a context uniformly (callers with no deadline pass
// context.Background()): a cancelled or deadline-exceeded run stops
// promptly and returns the partial result it had produced together with
// a non-nil error matching the context's error under errors.Is. The
// evaluation harness uses this to enforce time budgets without
// abandoning goroutines. This replaces the former optional
// ContextMethod extension interface — cancellation is part of the
// contract, not an upgrade.
type Method interface {
	// Name identifies the method in experiment reports.
	Name() string
	// Impute returns the imputed clone of rel.
	Impute(ctx context.Context, rel *dataset.Relation) (*dataset.Relation, error)
}
