// Package knn implements the grey-based nearest-neighbour imputation of
// Huang & Lee [14] ("A grey-based nearest neighbor approach for missing
// attribute value prediction", Applied Intelligence 2004), the kNN
// baseline of the paper's comparative evaluation (Sec. 6.3).
//
// For each incomplete tuple the method computes the grey relational grade
// (GRG) between the tuple and every candidate donor over the attributes
// observed on both sides, selects the K donors with the highest grade,
// and fills numeric attributes with the grade-weighted mean and
// categorical ones with the grade-weighted mode of the donors' values.
package knn

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/distance"
)

// DefaultK is the neighbourhood size used when Config.K is zero.
const DefaultK = 5

// DefaultZeta is the grey distinguishing coefficient ζ used when
// Config.Zeta is zero; 0.5 is the value used throughout the grey
// relational analysis literature, including [14].
const DefaultZeta = 0.5

// Config tunes the imputer.
type Config struct {
	// K is the number of nearest neighbours. Zero means DefaultK.
	K int
	// Zeta is the grey distinguishing coefficient in (0, 1]. Zero means
	// DefaultZeta.
	Zeta float64
	// MinOverlap is the minimum number of mutually observed attributes
	// required to consider a donor at all. Zero means 1.
	MinOverlap int
}

// Imputer is the grey-based kNN method.
type Imputer struct {
	cfg Config
}

// New returns a grey-based kNN imputer.
func New(cfg Config) (*Imputer, error) {
	if cfg.K == 0 {
		cfg.K = DefaultK
	}
	if cfg.K < 0 {
		return nil, fmt.Errorf("knn: negative K %d", cfg.K)
	}
	if cfg.Zeta == 0 {
		cfg.Zeta = DefaultZeta
	}
	if cfg.Zeta < 0 || cfg.Zeta > 1 {
		return nil, fmt.Errorf("knn: zeta %v outside (0,1]", cfg.Zeta)
	}
	if cfg.MinOverlap == 0 {
		cfg.MinOverlap = 1
	}
	return &Imputer{cfg: cfg}, nil
}

// Name implements impute.Method.
func (im *Imputer) Name() string { return fmt.Sprintf("kNN(k=%d)", im.cfg.K) }

// Impute implements impute.Method. Donors are drawn from the tuples that
// have a value on the target attribute; the original (pre-run) values are
// used for similarity so that fill order does not matter.
// Impute implements impute.Method: the context is checked
// per incomplete tuple, and cancellation returns the partial result with
// the context's error.
func (im *Imputer) Impute(ctx context.Context, rel *dataset.Relation) (*dataset.Relation, error) {
	out := rel.Clone()
	m := rel.Schema().Len()

	// Per-attribute distance normalizers: the grey relational coefficient
	// needs Δmax over the attribute domain.
	norm := newNormalizer(rel)

	for _, row := range rel.IncompleteRows() {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		t := rel.Row(row)
		for _, attr := range t.MissingAttrs() {
			neighbours := im.nearest(rel, norm, row, attr)
			if len(neighbours) == 0 {
				continue
			}
			value := im.aggregate(rel, neighbours, attr, m)
			if !value.IsNull() {
				out.Set(row, attr, value)
			}
		}
	}
	return out, nil
}

// neighbour is one scored donor.
type neighbour struct {
	row   int
	grade float64
}

// nearest returns the K donors with the highest grey relational grade
// against the target row, computed over the attributes observed on both
// tuples (excluding the target attribute).
func (im *Imputer) nearest(rel *dataset.Relation, norm *normalizer, row, attr int) []neighbour {
	t := rel.Row(row)
	var scored []neighbour
	for j := 0; j < rel.Len(); j++ {
		if j == row {
			continue
		}
		tj := rel.Row(j)
		if tj[attr].IsNull() {
			continue
		}
		grade, overlap := greyGrade(t, tj, attr, norm, im.cfg.Zeta)
		if overlap < im.cfg.MinOverlap {
			continue
		}
		scored = append(scored, neighbour{row: j, grade: grade})
	}
	sort.Slice(scored, func(a, b int) bool {
		if scored[a].grade != scored[b].grade {
			return scored[a].grade > scored[b].grade
		}
		return scored[a].row < scored[b].row
	})
	if len(scored) > im.cfg.K {
		scored = scored[:im.cfg.K]
	}
	return scored
}

// aggregate combines the neighbours' values on the target attribute:
// grade-weighted mean for numerics, grade-weighted mode otherwise.
func (im *Imputer) aggregate(rel *dataset.Relation, neighbours []neighbour, attr, m int) dataset.Value {
	kind := rel.Schema().Attr(attr).Kind
	if kind.Numeric() {
		sum, weight := 0.0, 0.0
		for _, nb := range neighbours {
			v := rel.Get(nb.row, attr)
			w := nb.grade
			if w <= 0 {
				w = 1e-9
			}
			sum += w * v.Float()
			weight += w
		}
		if weight == 0 {
			return dataset.Null
		}
		mean := sum / weight
		if kind == dataset.KindInt {
			return dataset.NewInt(int64(math.Round(mean)))
		}
		return dataset.NewFloat(mean)
	}
	// Weighted mode over the string rendering; ties broken by first
	// appearance for determinism.
	weights := map[string]float64{}
	first := map[string]int{}
	var keys []string
	for i, nb := range neighbours {
		v := rel.Get(nb.row, attr)
		key := v.String()
		if _, seen := weights[key]; !seen {
			first[key] = i
			keys = append(keys, key)
		}
		w := nb.grade
		if w <= 0 {
			w = 1e-9
		}
		weights[key] += w
	}
	if len(keys) == 0 {
		return dataset.Null
	}
	best := keys[0]
	for _, k := range keys[1:] {
		if weights[k] > weights[best] || (weights[k] == weights[best] && first[k] < first[best]) {
			best = k
		}
	}
	// Recover the typed value from the winning neighbour.
	for _, nb := range neighbours {
		if v := rel.Get(nb.row, attr); v.String() == best {
			return v
		}
	}
	return dataset.Null
}

// greyGrade is the grey relational grade between tuples a and b over the
// attributes observed on both, skipping the target attribute. The grey
// relational coefficient per attribute is
//
//	GRC(k) = (Δmin + ζ·Δmax) / (Δ(k) + ζ·Δmax)
//
// with Δ the normalized per-attribute distance, Δmin = 0 and Δmax = 1
// after normalization. The grade is the coefficients' mean. The second
// result is the overlap size.
func greyGrade(a, b dataset.Tuple, skip int, norm *normalizer, zeta float64) (float64, int) {
	sum, count := 0.0, 0
	for k := range a {
		if k == skip || a[k].IsNull() || b[k].IsNull() {
			continue
		}
		delta := norm.normalizedDistance(k, a[k], b[k])
		if math.IsNaN(delta) {
			continue
		}
		sum += zeta / (delta + zeta) // (0 + ζ·1)/(Δ + ζ·1)
		count++
	}
	if count == 0 {
		return 0, 0
	}
	return sum / float64(count), count
}

// normalizer precomputes per-attribute distance scales so heterogeneous
// domains contribute comparably to the grade.
type normalizer struct {
	scale []float64 // max observed distance per attribute (0 -> exact match only)
	kinds []dataset.Kind
}

func newNormalizer(rel *dataset.Relation) *normalizer {
	m := rel.Schema().Len()
	n := &normalizer{scale: make([]float64, m), kinds: make([]dataset.Kind, m)}
	for a := 0; a < m; a++ {
		n.kinds[a] = rel.Schema().Attr(a).Kind
		if n.kinds[a].Numeric() {
			lo, hi := math.Inf(1), math.Inf(-1)
			for i := 0; i < rel.Len(); i++ {
				v := rel.Get(i, a)
				if v.IsNull() {
					continue
				}
				f := v.Float()
				lo, hi = math.Min(lo, f), math.Max(hi, f)
			}
			if hi > lo {
				n.scale[a] = hi - lo
			}
		}
	}
	return n
}

// normalizedDistance maps a pair of values to [0, 1]: numeric distances
// divide by the attribute range; strings use the normalized Levenshtein
// metric; booleans are 0/1. NaN flags incomparable values.
func (n *normalizer) normalizedDistance(attr int, a, b dataset.Value) float64 {
	switch {
	case n.kinds[attr].Numeric():
		if n.scale[attr] == 0 {
			if a.Float() == b.Float() {
				return 0
			}
			return 1
		}
		d := math.Abs(a.Float()-b.Float()) / n.scale[attr]
		return math.Min(d, 1)
	case n.kinds[attr] == dataset.KindString:
		return distance.NormalizedLevenshtein(a.Str(), b.Str())
	case n.kinds[attr] == dataset.KindBool:
		if a.Bool() == b.Bool() {
			return 0
		}
		return 1
	default:
		return math.NaN()
	}
}
