package knn

import (
	"context"
	"math"
	"testing"

	"repro/internal/dataset"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{K: -1}); err == nil {
		t.Error("negative K accepted")
	}
	if _, err := New(Config{Zeta: 2}); err == nil {
		t.Error("zeta > 1 accepted")
	}
	if _, err := New(Config{Zeta: -0.5}); err == nil {
		t.Error("negative zeta accepted")
	}
	im, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if im.cfg.K != DefaultK || im.cfg.Zeta != DefaultZeta {
		t.Errorf("defaults not applied: %+v", im.cfg)
	}
	if im.Name() == "" {
		t.Error("empty name")
	}
}

func TestNumericImputationNearNeighbours(t *testing.T) {
	// Rows cluster in two groups by X; the missing Y must be filled from
	// its own cluster's Y values.
	rel, err := dataset.ReadCSVString(`X,Y
1.0,10.0
1.1,10.2
1.2,9.8
9.0,50.0
9.1,50.4
9.2,
`)
	if err != nil {
		t.Fatal(err)
	}
	im, err := New(Config{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	out, err := im.Impute(context.Background(), rel)
	if err != nil {
		t.Fatal(err)
	}
	got := out.Get(5, 1)
	if got.IsNull() {
		t.Fatal("Y not imputed")
	}
	if got.Float() < 49 || got.Float() > 51 {
		t.Errorf("imputed Y = %v, want near 50 (same cluster)", got.Float())
	}
}

func TestIntAttributeRoundsToInt(t *testing.T) {
	rel, err := dataset.ReadCSVString(`X,Y
1,10
1,11
1,
`)
	if err != nil {
		t.Fatal(err)
	}
	im, err := New(Config{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	out, err := im.Impute(context.Background(), rel)
	if err != nil {
		t.Fatal(err)
	}
	got := out.Get(2, 1)
	if got.Kind() != dataset.KindInt {
		t.Errorf("imputed kind = %v, want int", got.Kind())
	}
	if got.Int() != 10 && got.Int() != 11 {
		t.Errorf("imputed Y = %v, want 10 or 11", got.Int())
	}
}

func TestCategoricalModeImputation(t *testing.T) {
	rel, err := dataset.ReadCSVString(`Group,Label
a,red
a,red
a,blue
b,green
a,
`)
	if err != nil {
		t.Fatal(err)
	}
	im, err := New(Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	out, err := im.Impute(context.Background(), rel)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Get(4, 1); got.Str() != "red" {
		t.Errorf("imputed Label = %q, want red (weighted mode)", got.Str())
	}
}

func TestNoDonorsLeavesMissing(t *testing.T) {
	rel, err := dataset.ReadCSVString(`X,Y
1,
2,
`)
	if err != nil {
		t.Fatal(err)
	}
	im, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := im.Impute(context.Background(), rel)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Get(0, 1).IsNull() || !out.Get(1, 1).IsNull() {
		t.Error("imputed with no donors available")
	}
}

func TestNoOverlapLeavesMissing(t *testing.T) {
	// The incomplete tuple shares no observed attribute with the donor.
	rel, err := dataset.ReadCSVString(`A,B,C
x,,1
,y,
`)
	if err != nil {
		t.Fatal(err)
	}
	im, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := im.Impute(context.Background(), rel)
	if err != nil {
		t.Fatal(err)
	}
	// Row 1's C: only donor is row 0, whose observed attrs are {A, C};
	// row 1 observes only {B} besides the target -> no overlap.
	if !out.Get(1, 2).IsNull() {
		t.Error("imputed despite zero attribute overlap")
	}
}

func TestInputNotMutated(t *testing.T) {
	rel, err := dataset.ReadCSVString("X,Y\n1,10\n1,\n")
	if err != nil {
		t.Fatal(err)
	}
	im, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := im.Impute(context.Background(), rel); err != nil {
		t.Fatal(err)
	}
	if !rel.Get(1, 1).IsNull() {
		t.Error("input mutated")
	}
}

func TestGreyGradeProperties(t *testing.T) {
	rel, err := dataset.ReadCSVString(`X,Y,Z
0,0,a
10,10,b
5,5,c
`)
	if err != nil {
		t.Fatal(err)
	}
	norm := newNormalizer(rel)
	t0, t1, t2 := rel.Row(0), rel.Row(1), rel.Row(2)
	// Identical tuples have grade 1 (all deltas 0).
	g, n := greyGrade(t0, t0, 2, norm, 0.5)
	if n != 2 || math.Abs(g-1) > 1e-12 {
		t.Errorf("self grade = %v over %d attrs, want 1 over 2", g, n)
	}
	// The far pair must have a lower grade than the near pair.
	gFar, _ := greyGrade(t0, t1, 2, norm, 0.5)
	gNear, _ := greyGrade(t0, t2, 2, norm, 0.5)
	if gFar >= gNear {
		t.Errorf("grade(far)=%v >= grade(near)=%v", gFar, gNear)
	}
	// Grades live in (0, 1].
	if gFar <= 0 || gFar > 1 || gNear <= 0 || gNear > 1 {
		t.Errorf("grades out of range: %v %v", gFar, gNear)
	}
}

func TestNormalizerStringsAndBools(t *testing.T) {
	rel, err := dataset.ReadCSVString(`S,B
abc,true
abd,false
`)
	if err != nil {
		t.Fatal(err)
	}
	norm := newNormalizer(rel)
	d := norm.normalizedDistance(0, rel.Get(0, 0), rel.Get(1, 0))
	if d <= 0 || d > 1 {
		t.Errorf("string distance = %v", d)
	}
	if got := norm.normalizedDistance(1, rel.Get(0, 1), rel.Get(1, 1)); got != 1 {
		t.Errorf("bool distance = %v, want 1", got)
	}
	if got := norm.normalizedDistance(1, rel.Get(0, 1), rel.Get(0, 1)); got != 0 {
		t.Errorf("bool self distance = %v, want 0", got)
	}
}

func TestConstantNumericAttribute(t *testing.T) {
	// Zero range: distance degenerates to exact-match 0/1 without NaNs.
	rel, err := dataset.ReadCSVString("X,Y\n5,1\n5,2\n5,\n")
	if err != nil {
		t.Fatal(err)
	}
	im, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := im.Impute(context.Background(), rel)
	if err != nil {
		t.Fatal(err)
	}
	got := out.Get(2, 1)
	if got.IsNull() {
		t.Fatal("not imputed")
	}
	if f := got.Float(); f < 1 || f > 2 {
		t.Errorf("imputed %v, want within donor range", f)
	}
}
