// Package meanmode implements the classical statistical imputation
// floor: numeric attributes take the column mean, everything else the
// column mode. It is the sanity baseline every imputation study keeps
// around (cf. Batista & Monard [1] in the paper's references) — any
// method that loses to it is not using the record's context at all.
package meanmode

import (
	"context"
	"math"

	"repro/internal/dataset"
)

// Imputer fills every missing cell from its column's summary statistic.
type Imputer struct{}

// New returns the mean/mode imputer.
func New() *Imputer { return &Imputer{} }

// Name implements impute.Method.
func (im *Imputer) Name() string { return "Mean/Mode" }

// Impute implements impute.Method. Column statistics are computed over
// the observed cells of the input; a column with no observed values
// stays missing. The method is a single cheap pass, so only an upfront
// cancellation check is needed.
func (im *Imputer) Impute(ctx context.Context, rel *dataset.Relation) (*dataset.Relation, error) {
	if err := ctx.Err(); err != nil {
		return rel.Clone(), err
	}
	out := rel.Clone()
	m := rel.Schema().Len()
	fills := make([]dataset.Value, m)
	for a := 0; a < m; a++ {
		fills[a] = columnFill(rel, a)
	}
	for i := 0; i < out.Len(); i++ {
		for a := 0; a < m; a++ {
			if out.Get(i, a).IsNull() && !fills[a].IsNull() {
				out.Set(i, a, fills[a])
			}
		}
	}
	return out, nil
}

// columnFill computes the column's fill value: mean for numerics
// (rounded for int columns), mode for strings and booleans.
func columnFill(rel *dataset.Relation, attr int) dataset.Value {
	kind := rel.Schema().Attr(attr).Kind
	if kind.Numeric() {
		sum, n := 0.0, 0
		for i := 0; i < rel.Len(); i++ {
			v := rel.Get(i, attr)
			if v.IsNull() {
				continue
			}
			sum += v.Float()
			n++
		}
		if n == 0 {
			return dataset.Null
		}
		mean := sum / float64(n)
		if kind == dataset.KindInt {
			return dataset.NewInt(int64(math.Round(mean)))
		}
		return dataset.NewFloat(mean)
	}
	counts := map[string]int{}
	first := map[string]int{}
	var keys []string
	for i := 0; i < rel.Len(); i++ {
		v := rel.Get(i, attr)
		if v.IsNull() {
			continue
		}
		k := v.String()
		if _, seen := counts[k]; !seen {
			first[k] = i
			keys = append(keys, k)
		}
		counts[k]++
	}
	if len(keys) == 0 {
		return dataset.Null
	}
	best := keys[0]
	for _, k := range keys[1:] {
		if counts[k] > counts[best] || (counts[k] == counts[best] && first[k] < first[best]) {
			best = k
		}
	}
	for i := 0; i < rel.Len(); i++ {
		if v := rel.Get(i, attr); !v.IsNull() && v.String() == best {
			return v
		}
	}
	return dataset.Null
}
