package meanmode

import (
	"context"
	"testing"

	"repro/internal/dataset"
)

func TestMeanForNumeric(t *testing.T) {
	rel, err := dataset.ReadCSVString("X\n1.0\n2.0\n6.0\n_\n")
	if err != nil {
		t.Fatal(err)
	}
	out, err := New().Impute(context.Background(), rel)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Get(3, 0).Float(); got != 3 {
		t.Errorf("mean fill = %v, want 3", got)
	}
}

func TestMeanRoundsForIntColumns(t *testing.T) {
	rel, err := dataset.ReadCSVString("X\n1\n2\n_\n")
	if err != nil {
		t.Fatal(err)
	}
	out, err := New().Impute(context.Background(), rel)
	if err != nil {
		t.Fatal(err)
	}
	got := out.Get(2, 0)
	if got.Kind() != dataset.KindInt {
		t.Errorf("kind = %v, want int", got.Kind())
	}
	if got.Int() != 2 { // 1.5 rounds to 2
		t.Errorf("fill = %v", got.Int())
	}
}

func TestModeForStrings(t *testing.T) {
	rel, err := dataset.ReadCSVString("C\nred\nred\nblue\n_\n")
	if err != nil {
		t.Fatal(err)
	}
	out, err := New().Impute(context.Background(), rel)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Get(3, 0).Str(); got != "red" {
		t.Errorf("mode fill = %q", got)
	}
}

func TestModeTieBreaksByFirstAppearance(t *testing.T) {
	rel, err := dataset.ReadCSVString("C\nb\na\nb\na\n_\n")
	if err != nil {
		t.Fatal(err)
	}
	out, err := New().Impute(context.Background(), rel)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Get(4, 0).Str(); got != "b" {
		t.Errorf("tie fill = %q, want b (first seen)", got)
	}
}

func TestEmptyColumnStaysMissing(t *testing.T) {
	rel, err := dataset.ReadCSVString("A,B\nx,\ny,\n")
	if err != nil {
		t.Fatal(err)
	}
	out, err := New().Impute(context.Background(), rel)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Get(0, 1).IsNull() {
		t.Error("filled from an empty column")
	}
}

func TestInputNotMutatedAndName(t *testing.T) {
	rel, err := dataset.ReadCSVString("X\n1\n_\n")
	if err != nil {
		t.Fatal(err)
	}
	im := New()
	if im.Name() == "" {
		t.Error("empty name")
	}
	if _, err := im.Impute(context.Background(), rel); err != nil {
		t.Fatal(err)
	}
	if !rel.Get(1, 0).IsNull() {
		t.Error("input mutated")
	}
}

func TestBooleanMode(t *testing.T) {
	rel, err := dataset.ReadCSVString("F\ntrue\ntrue\nfalse\n_\n")
	if err != nil {
		t.Fatal(err)
	}
	out, err := New().Impute(context.Background(), rel)
	if err != nil {
		t.Fatal(err)
	}
	got := out.Get(3, 0)
	if got.Kind() != dataset.KindBool || !got.Bool() {
		t.Errorf("bool fill = %v", got)
	}
}
