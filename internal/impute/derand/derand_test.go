package derand

import (
	"context"
	"testing"

	"repro/internal/dataset"
	"repro/internal/rfd"
)

func table2(t testing.TB) *dataset.Relation {
	t.Helper()
	rel, err := dataset.ReadCSVString(`Name,City,Phone,Type,Class
Granita,Malibu,310/456-0488,Californian,6
Chinois Main,LA,310-392-9025,French,5
Citrus,Los Angeles,213/857-0034,Californian,6
Citrus,Los Angeles,,Californian,6
Fenix,Hollywood,213/848-6677,,5
Fenix Argyle,,213/848-6677,French (new),5
C. Main,Los Angeles,,French,5
`)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func figure1DDs(t testing.TB, schema *dataset.Schema) rfd.Set {
	t.Helper()
	specs := []string{
		"Class(<=0) -> Type(<=5)",
		"City(<=2) -> Phone(<=2)",
		"Name(<=4) -> Phone(<=1)",
		"Name(<=8), Phone(<=0) -> City(<=9)",
		"Name(<=6), City(<=9) -> Phone(<=0)",
		"Phone(<=1) -> Class(<=0)",
	}
	var out rfd.Set
	for _, s := range specs {
		out = append(out, rfd.MustParse(s, schema))
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{MaxCandidates: -1}); err == nil {
		t.Error("negative MaxCandidates accepted")
	}
	if _, err := New(nil, Config{LookaheadCells: -1}); err == nil {
		t.Error("negative LookaheadCells accepted")
	}
	im, err := New(nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if im.Name() != "Derand" {
		t.Errorf("Name = %q", im.Name())
	}
	rnd, err := New(nil, Config{Mode: Randomized})
	if err != nil {
		t.Fatal(err)
	}
	if rnd.Name() != "Round" {
		t.Errorf("Name = %q", rnd.Name())
	}
}

func TestImputesTable2(t *testing.T) {
	rel := table2(t)
	im, err := New(figure1DDs(t, rel.Schema()), Config{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := im.Impute(context.Background(), rel)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.CountMissing(); got >= rel.CountMissing() {
		t.Errorf("missing after = %d, before = %d; want progress", got, rel.CountMissing())
	}
	// t6[City] has a single DD donor (t5, equal phone): must be Hollywood.
	city := rel.Schema().MustIndex("City")
	if got := out.Get(5, city); got.Str() != "Hollywood" {
		t.Errorf("t6[City] = %q, want Hollywood", got.Str())
	}
	// Input untouched.
	if rel.CountMissing() != 4 {
		t.Error("input mutated")
	}
}

func TestConsistencyRespected(t *testing.T) {
	// The only candidate value would witness a DD violation: stay missing.
	rel, err := dataset.ReadCSVString(`A,B,C
x,b1,1
x,,9
y,b1,1
`)
	if err != nil {
		t.Fatal(err)
	}
	schema := rel.Schema()
	dds := rfd.Set{
		rfd.MustParse("A(<=0) -> B(<=0)", schema),
		rfd.MustParse("B(<=0) -> C(<=1)", schema),
	}
	im, err := New(dds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := im.Impute(context.Background(), rel)
	if err != nil {
		t.Fatal(err)
	}
	// Candidate b1 (via A match with row 0) violates B(<=0)->C(<=1)
	// against rows 0 and 2 (C gap 8).
	if !out.Get(1, 1).IsNull() {
		t.Errorf("row1.B = %v, want missing (inconsistent candidate)", out.Get(1, 1))
	}
}

func TestDerandPrefersNonConflictingValue(t *testing.T) {
	// Two candidate values for cell 1; choosing "v9" would make the later
	// cell (same attribute) unimputable, so conditional expectation must
	// pick "v1".
	rel, err := dataset.ReadCSVString(`K,B,C
a,v1,c1
ab,v9,c1
a,,c1
zz,v1,qq
zz,,qq
`)
	if err != nil {
		t.Fatal(err)
	}
	schema := rel.Schema()
	dds := rfd.Set{
		rfd.MustParse("K(<=2) -> B(<=100)", schema), // proposes both v1 and v9 for row 2
		rfd.MustParse("C(<=0) -> B(<=0)", schema),   // same C forces same B
	}
	im, err := New(dds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := im.Impute(context.Background(), rel)
	if err != nil {
		t.Fatal(err)
	}
	// Row 2 shares C=c1 with rows 0 and 1... which already disagree on B
	// (v1 vs v9 distance > 0), so C(<=0)->B(<=0) is violated on the input
	// for (0,1); but for row 2 any value conflicts with one of them.
	// Expectation: row 2 stays missing; row 4 (C=qq, donor row 3 via K)
	// gets v1.
	if got := out.Get(4, 1); got.Str() != "v1" {
		t.Errorf("row4.B = %v, want v1", got)
	}
	_ = out.Get(2, 1) // row 2's outcome is unconstrained here; see above.
}

func TestConditionalExpectationOverridesClosestCandidate(t *testing.T) {
	// Row 2's candidates: v9 at distance 0 (closest) and v1 at distance
	// 1, both individually consistent. Fixing v9 would make the later
	// same-attribute cell (row 4) unimputable through C(<=0) -> B(<=0),
	// so the derandomized conditional expectation must choose v1 even
	// though v9 is nearer. The Randomized mode has no lookahead and can
	// go either way; Derand must be deterministic about it.
	rel, err := dataset.ReadCSVString(`K,B,C
ab,v1,c9
a,v9,c8
a,,c1
zy,v1,c5
zz,,c1
`)
	if err != nil {
		t.Fatal(err)
	}
	schema := rel.Schema()
	dds := rfd.Set{
		rfd.MustParse("K(<=1) -> B(<=100)", schema),
		rfd.MustParse("C(<=0) -> B(<=0)", schema),
	}
	im, err := New(dds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := im.Impute(context.Background(), rel)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Get(2, 1); got.Str() != "v1" {
		t.Errorf("row2.B = %v, want v1 (lookahead keeps row4 imputable)", got)
	}
	if got := out.Get(4, 1); got.Str() != "v1" {
		t.Errorf("row4.B = %v, want v1", got)
	}
}

func TestLookaheadSetScope(t *testing.T) {
	// lookaheadSet only returns unfixed cells sharing a row or an
	// attribute, capped at LookaheadCells.
	im, err := New(nil, Config{LookaheadCells: 1})
	if err != nil {
		t.Fatal(err)
	}
	cells := []cellState{
		{cell: dataset.Cell{Row: 0, Attr: 1}, values: []dataset.Value{dataset.NewString("x")}},
		{cell: dataset.Cell{Row: 5, Attr: 1}, values: []dataset.Value{dataset.NewString("x")}}, // same attr
		{cell: dataset.Cell{Row: 0, Attr: 3}, values: []dataset.Value{dataset.NewString("x")}}, // same row
		{cell: dataset.Cell{Row: 9, Attr: 9}, values: []dataset.Value{dataset.NewString("x")}}, // unrelated
		{cell: dataset.Cell{Row: 6, Attr: 1}, values: nil},                                     // no candidates
	}
	got := im.lookaheadSet(cells, 0)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("lookaheadSet = %v, want [1] (cap 1, nearest same-attr)", got)
	}
	im2, err := New(nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	got = im2.lookaheadSet(cells, 0)
	if len(got) != 2 { // same attr + same row; unrelated and empty excluded
		t.Errorf("lookaheadSet = %v, want 2 neighbours", got)
	}
}

func TestGreedyTakesClosestConsistent(t *testing.T) {
	// Same instance as the conditional-expectation test: Greedy has no
	// lookahead and must take the closest candidate (v9), sacrificing the
	// later cell — the myopia Derand's expectation avoids.
	rel, err := dataset.ReadCSVString(`K,B,C
ab,v1,c9
a,v9,c8
a,,c1
zy,v1,c5
zz,,c1
`)
	if err != nil {
		t.Fatal(err)
	}
	schema := rel.Schema()
	dds := rfd.Set{
		rfd.MustParse("K(<=1) -> B(<=100)", schema),
		rfd.MustParse("C(<=0) -> B(<=0)", schema),
	}
	im, err := New(dds, Config{Mode: Greedy})
	if err != nil {
		t.Fatal(err)
	}
	if im.Name() != "Greedy" {
		t.Errorf("Name = %q", im.Name())
	}
	out, err := im.Impute(context.Background(), rel)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Get(2, 1); got.Str() != "v9" {
		t.Errorf("greedy row2.B = %v, want v9 (closest, myopic)", got)
	}
	if !out.Get(4, 1).IsNull() {
		t.Errorf("greedy row4.B = %v, want missing (blocked by v9)", out.Get(4, 1))
	}
}

func TestRandomizedSeedDeterminism(t *testing.T) {
	rel := table2(t)
	dds := figure1DDs(t, rel.Schema())
	a, err := New(dds, Config{Mode: Randomized, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(dds, Config{Mode: Randomized, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	outA, err := a.Impute(context.Background(), rel)
	if err != nil {
		t.Fatal(err)
	}
	outB, err := b.Impute(context.Background(), rel)
	if err != nil {
		t.Fatal(err)
	}
	if !outA.Equal(outB) {
		t.Error("same seed diverged")
	}
}

func TestDerandDeterminism(t *testing.T) {
	rel := table2(t)
	dds := figure1DDs(t, rel.Schema())
	im, err := New(dds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	outA, err := im.Impute(context.Background(), rel)
	if err != nil {
		t.Fatal(err)
	}
	outB, err := im.Impute(context.Background(), rel)
	if err != nil {
		t.Fatal(err)
	}
	if !outA.Equal(outB) {
		t.Error("Derand must be deterministic")
	}
}

func TestNoDDsNoImputation(t *testing.T) {
	rel := table2(t)
	im, err := New(nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := im.Impute(context.Background(), rel)
	if err != nil {
		t.Fatal(err)
	}
	if out.CountMissing() != rel.CountMissing() {
		t.Error("imputed without any DDs")
	}
}

func TestMaxCandidatesCap(t *testing.T) {
	rel := table2(t)
	dds := figure1DDs(t, rel.Schema())
	im, err := New(dds, Config{MaxCandidates: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := im.Impute(context.Background(), rel); err != nil {
		t.Fatal(err)
	}
}
