package derand

import (
	"context"
	"errors"
	"testing"

	"repro/internal/dataset"
	"repro/internal/rfd"
)

func newExactForTest(t *testing.T, dds rfd.Set, maxNodes int) *Exact {
	t.Helper()
	im, err := New(dds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return NewExact(im, maxNodes)
}

func TestExactImputesTable2(t *testing.T) {
	rel := table2(t)
	ex := newExactForTest(t, figure1DDs(t, rel.Schema()), 0)
	out, err := ex.Impute(context.Background(), rel)
	if err != nil {
		t.Fatal(err)
	}
	if out.CountMissing() >= rel.CountMissing() {
		t.Errorf("exact search made no progress: %d -> %d",
			rel.CountMissing(), out.CountMissing())
	}
	if ex.Name() != "Derand-Exact" {
		t.Errorf("Name = %q", ex.Name())
	}
}

func TestExactAtLeastAsManyAsDerand(t *testing.T) {
	// On the same instance and DD set, the exact optimum can never
	// impute fewer cells than the heuristic.
	rel := table2(t)
	dds := figure1DDs(t, rel.Schema())
	heuristic, err := New(dds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	hOut, err := heuristic.Impute(context.Background(), rel)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExact(heuristic, 0)
	eOut, err := ex.Impute(context.Background(), rel)
	if err != nil {
		t.Fatal(err)
	}
	if eOut.CountMissing() > hOut.CountMissing() {
		t.Errorf("exact left %d missing, heuristic %d",
			eOut.CountMissing(), hOut.CountMissing())
	}
}

func TestExactSolvesForcedTradeoff(t *testing.T) {
	// Two cells share a constraint: picking the greedy value for cell 1
	// blocks cell 2, while the optimum imputes both. K rows propose B
	// values; C(<=0) -> B(<=0) links rows with equal C.
	rel, err := dataset.ReadCSVString(`K,B,C
a,v1,c1
ab,v2,c9
a,,c1
ab,,c9
a,v1,c1
ab,v2,c9
`)
	if err != nil {
		t.Fatal(err)
	}
	schema := rel.Schema()
	dds := rfd.Set{
		rfd.MustParse("K(<=1) -> B(<=100)", schema),
		rfd.MustParse("C(<=0) -> B(<=0)", schema),
	}
	ex := newExactForTest(t, dds, 0)
	out, err := ex.Impute(context.Background(), rel)
	if err != nil {
		t.Fatal(err)
	}
	// Both cells are imputable consistently: row2.B = v1 (C group c1),
	// row3.B = v2 (C group c9).
	if got := out.Get(2, 1); got.Str() != "v1" {
		t.Errorf("row2.B = %v, want v1", got)
	}
	if got := out.Get(3, 1); got.Str() != "v2" {
		t.Errorf("row3.B = %v, want v2", got)
	}
}

func TestExactNodeBudget(t *testing.T) {
	rel := table2(t)
	ex := newExactForTest(t, figure1DDs(t, rel.Schema()), 1)
	out, err := ex.Impute(context.Background(), rel)
	if err != nil {
		t.Fatal(err)
	}
	// With one node nothing can be proven; the method still returns a
	// well-formed relation.
	if out.Len() != rel.Len() {
		t.Errorf("shape changed")
	}
}

func TestExactContextCancellation(t *testing.T) {
	rel := table2(t)
	ex := newExactForTest(t, figure1DDs(t, rel.Schema()), 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ex.Impute(ctx, rel)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want Canceled", err)
	}
}

func TestExactNoMissingCells(t *testing.T) {
	rel, err := dataset.ReadCSVString("A,B\nx,1\ny,2\n")
	if err != nil {
		t.Fatal(err)
	}
	ex := newExactForTest(t, nil, 0)
	out, err := ex.Impute(context.Background(), rel)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(rel) {
		t.Error("complete instance changed")
	}
}
