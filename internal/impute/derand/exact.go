package derand

import (
	"context"

	"repro/internal/dataset"
)

// Exact is the reference solver of Song et al. [23]'s problem statement:
// maximize the number of imputed cells subject to DD-consistency, the
// objective their integer linear program optimizes before the
// randomized/derandomized approximations. This implementation is a
// bounded branch-and-bound over per-cell candidate sets: each cell takes
// one of its individually consistent values or ⊥, the search prunes
// branches whose optimistic bound (current + remaining cells) cannot
// beat the incumbent, and a node budget caps worst-case blow-up (the
// problem is NP-hard, Sec. 6 of the paper).
//
// Use it on small instances to measure how much of the optimum the
// Derand heuristic recovers.
type Exact struct {
	im       *Imputer
	maxNodes int
}

// NewExact wraps a Derand configuration's candidate machinery in the
// exact solver. maxNodes bounds the search (0 means 200000 nodes); when
// the budget is exhausted, the best assignment found so far is returned.
func NewExact(im *Imputer, maxNodes int) *Exact {
	if maxNodes <= 0 {
		maxNodes = 200000
	}
	return &Exact{im: im, maxNodes: maxNodes}
}

// Name implements impute.Method.
func (e *Exact) Name() string { return "Derand-Exact" }

// Impute implements impute.Method.
func (e *Exact) Impute(ctx context.Context, rel *dataset.Relation) (*dataset.Relation, error) {
	work := rel.Clone()
	cells := e.im.collectCells(work)
	if len(cells) == 0 {
		return work, nil
	}

	// Pre-filter each cell's candidates to the individually consistent
	// ones against the *input* instance; pairwise interactions are
	// handled by the search's per-node consistency check.
	domains := make([][]dataset.Value, len(cells))
	for i := range cells {
		domains[i] = e.im.consistentValues(work, &cells[i])
	}

	best := make([]dataset.Value, len(cells)) // nil entries = ⊥
	cur := make([]dataset.Value, len(cells))
	bestCount, nodes := -1, 0

	var search func(idx, count int) error
	search = func(idx, count int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		nodes++
		if nodes > e.maxNodes {
			return nil
		}
		if count+(len(cells)-idx) <= bestCount {
			return nil
		}
		if idx == len(cells) {
			if count > bestCount {
				bestCount = count
				copy(best, cur)
			}
			return nil
		}
		c := cells[idx].cell
		for _, v := range domains[idx] {
			if !e.im.valueConsistent(work, c, v) {
				continue
			}
			work.Set(c.Row, c.Attr, v)
			cur[idx] = v
			err := search(idx+1, count+1)
			work.Set(c.Row, c.Attr, dataset.Null)
			if err != nil {
				return err
			}
		}
		cur[idx] = dataset.Null
		return search(idx+1, count)
	}
	if err := search(0, 0); err != nil {
		return work, err
	}
	for i, c := range cells {
		if !best[i].IsNull() {
			work.Set(c.cell.Row, c.cell.Attr, best[i])
		}
	}
	return work, nil
}
