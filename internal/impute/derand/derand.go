// Package derand reimplements the Derand algorithm of Song et al. [23]
// ("Enriching data imputation under similarity rule constraints", TKDE
// 2020), the differential-dependency-guided baseline of the paper's
// comparative evaluation. There is no public reference implementation;
// this version follows the TKDE paper's structure:
//
//   - candidate values for each missing cell are proposed by the donor
//     tuples that satisfy the LHS of a differential dependency whose RHS
//     is the missing attribute (DDs share the RFDc structure, so the
//     rfd.Set type carries them);
//   - the maximization of the number of imputed cells is NP-hard, so the
//     assignment is relaxed to uniform fractional probabilities over each
//     cell's candidate set (the LP-relaxation surrogate);
//   - the rounding is derandomized by the method of conditional
//     expectations: cells are fixed one at a time to the value whose
//     one-step conditional expectation of eventually-imputed cells is
//     highest, where the expectation over the still-unfixed neighbour
//     cells is the fraction of their candidates that stay individually
//     consistent.
//
// The paper's full four-algorithm suite is covered: Derandomized (this
// type's default), the seeded Randomized rounding ("Round"), the myopic
// Greedy approximation, and the exact branch-and-bound reference (the
// Exact type standing in for their ILP).
package derand

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/dataset"
	"repro/internal/distance"
	"repro/internal/rfd"
)

// Mode selects the rounding strategy.
type Mode int

const (
	// Derandomized fixes each cell via conditional expectations — the
	// paper's headline Derand algorithm.
	Derandomized Mode = iota
	// Randomized samples each cell uniformly from its consistent
	// candidates — the paper's randomized-rounding baseline.
	Randomized
	// Greedy takes the closest consistent candidate with no lookahead —
	// the paper's simple approximation algorithm. Together with Exact
	// (the ILP reference) this completes the four-algorithm suite of
	// [23].
	Greedy
)

// Config tunes the imputer.
type Config struct {
	// Mode selects Derandomized (default), Randomized, or Greedy.
	Mode Mode
	// MaxCandidates caps each cell's candidate set, keeping the closest
	// donors. Zero means 10.
	MaxCandidates int
	// LookaheadCells caps how many unfixed neighbour cells the
	// conditional expectation inspects per candidate. Zero means 16.
	LookaheadCells int
	// Seed drives Randomized mode.
	Seed int64
}

// Imputer is the Derand method over one DD set.
type Imputer struct {
	dds rfd.Set
	cfg Config
}

// New returns a Derand imputer guided by the DD set.
func New(dds rfd.Set, cfg Config) (*Imputer, error) {
	if cfg.MaxCandidates == 0 {
		cfg.MaxCandidates = 10
	}
	if cfg.MaxCandidates < 0 {
		return nil, fmt.Errorf("derand: negative MaxCandidates")
	}
	if cfg.LookaheadCells == 0 {
		cfg.LookaheadCells = 16
	}
	if cfg.LookaheadCells < 0 {
		return nil, fmt.Errorf("derand: negative LookaheadCells")
	}
	return &Imputer{dds: dds, cfg: cfg}, nil
}

// Name implements impute.Method.
func (im *Imputer) Name() string {
	switch im.cfg.Mode {
	case Randomized:
		return "Round"
	case Greedy:
		return "Greedy"
	default:
		return "Derand"
	}
}

// cellState tracks one missing cell through the rounding.
type cellState struct {
	cell   dataset.Cell
	values []dataset.Value // candidate values, closest donor first
	fixed  bool
}

// Impute implements impute.Method: the context is checked
// before each cell is fixed.
func (im *Imputer) Impute(ctx context.Context, rel *dataset.Relation) (*dataset.Relation, error) {
	work := rel.Clone()
	cells := im.collectCells(work)
	rng := rand.New(rand.NewSource(im.cfg.Seed))

	for idx := range cells {
		if err := ctx.Err(); err != nil {
			return work, err
		}
		c := &cells[idx]
		consistent := im.consistentValues(work, c)
		if len(consistent) == 0 {
			c.fixed = true
			continue
		}
		var chosen dataset.Value
		switch im.cfg.Mode {
		case Randomized:
			chosen = consistent[rng.Intn(len(consistent))]
		case Greedy:
			chosen = consistent[0] // candidate lists are distance-ordered
		default:
			chosen = im.bestByConditionalExpectation(work, cells, idx, consistent)
		}
		work.Set(c.cell.Row, c.cell.Attr, chosen)
		c.fixed = true
	}
	return work, nil
}

// collectCells builds the candidate sets for every missing cell from the
// DD donors (Definition 4.5 applied to DDs).
func (im *Imputer) collectCells(work *dataset.Relation) []cellState {
	var cells []cellState
	for _, row := range work.IncompleteRows() {
		for _, attr := range work.Row(row).MissingAttrs() {
			cells = append(cells, cellState{
				cell:   dataset.Cell{Row: row, Attr: attr},
				values: im.candidates(work, row, attr),
			})
		}
	}
	return cells
}

// candidates lists the distinct donor values for (row, attr), ranked by
// the donors' mean LHS distance and capped at MaxCandidates.
func (im *Imputer) candidates(work *dataset.Relation, row, attr int) []dataset.Value {
	deps := im.dds.ForRHS(attr)
	if len(deps) == 0 {
		return nil
	}
	m := work.Schema().Len()
	t := work.Row(row)
	p := distance.NewPattern(m)

	type scored struct {
		value dataset.Value
		dist  float64
	}
	bestByKey := map[string]scored{}
	var order []string
	for j := 0; j < work.Len(); j++ {
		if j == row {
			continue
		}
		tj := work.Row(j)
		if tj[attr].IsNull() {
			continue
		}
		distance.PatternInto(p, t, tj)
		best, found := 0.0, false
		for _, dep := range deps {
			if !dep.LHSSatisfiedBy(p) {
				continue
			}
			if d, ok := p.MeanOver(dep.LHSAttrs()); ok && (!found || d < best) {
				best, found = d, true
			}
		}
		if !found {
			continue
		}
		key := tj[attr].String()
		if prev, seen := bestByKey[key]; !seen || best < prev.dist {
			if !seen {
				order = append(order, key)
			}
			bestByKey[key] = scored{value: tj[attr], dist: best}
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		return bestByKey[order[a]].dist < bestByKey[order[b]].dist
	})
	if len(order) > im.cfg.MaxCandidates {
		order = order[:im.cfg.MaxCandidates]
	}
	out := make([]dataset.Value, len(order))
	for i, k := range order {
		out[i] = bestByKey[k].value
	}
	return out
}

// consistentValues filters a cell's candidates to those that do not
// witness a DD violation against the current instance.
func (im *Imputer) consistentValues(work *dataset.Relation, c *cellState) []dataset.Value {
	var out []dataset.Value
	for _, v := range c.values {
		if im.valueConsistent(work, c.cell, v) {
			out = append(out, v)
		}
	}
	return out
}

// valueConsistent tentatively assigns the value and checks every DD that
// constrains the attribute (either side) for a witnessed violation
// involving the cell's tuple.
func (im *Imputer) valueConsistent(work *dataset.Relation, cell dataset.Cell, v dataset.Value) bool {
	old := work.Get(cell.Row, cell.Attr)
	work.Set(cell.Row, cell.Attr, v)
	defer work.Set(cell.Row, cell.Attr, old)

	var relevant rfd.Set
	for _, dep := range im.dds {
		if dep.HasLHSAttr(cell.Attr) || dep.RHS.Attr == cell.Attr {
			relevant = append(relevant, dep)
		}
	}
	if len(relevant) == 0 {
		return true
	}
	m := work.Schema().Len()
	t := work.Row(cell.Row)
	p := distance.NewPattern(m)
	for i := 0; i < work.Len(); i++ {
		if i == cell.Row {
			continue
		}
		distance.PatternInto(p, t, work.Row(i))
		for _, dep := range relevant {
			if dep.ViolatedBy(p) {
				return false
			}
		}
	}
	return true
}

// bestByConditionalExpectation scores each consistent candidate by
// 1 (this cell imputed) plus the expected number of imputations among the
// next unfixed cells, estimated as each neighbour's fraction of
// candidates that remain individually consistent after fixing this value.
// The candidate with the highest expectation wins; ties keep the closest
// donor (the candidate list is distance-ordered).
func (im *Imputer) bestByConditionalExpectation(work *dataset.Relation, cells []cellState, idx int, consistent []dataset.Value) dataset.Value {
	if len(consistent) == 1 {
		return consistent[0]
	}
	c := &cells[idx]
	neighbours := im.lookaheadSet(cells, idx)
	best, bestScore := consistent[0], -1.0
	for _, v := range consistent {
		work.Set(c.cell.Row, c.cell.Attr, v)
		score := 1.0
		for _, nIdx := range neighbours {
			nc := &cells[nIdx]
			if len(nc.values) == 0 {
				continue
			}
			viable := 0
			for _, nv := range nc.values {
				if im.valueConsistent(work, nc.cell, nv) {
					viable++
				}
			}
			score += float64(viable) / float64(len(nc.values))
		}
		work.Set(c.cell.Row, c.cell.Attr, dataset.Null)
		if score > bestScore {
			best, bestScore = v, score
		}
	}
	return best
}

// lookaheadSet picks the unfixed cells whose assignments can interact
// with the given cell through a DD — same attribute or same tuple —
// capped at LookaheadCells.
func (im *Imputer) lookaheadSet(cells []cellState, idx int) []int {
	c := cells[idx].cell
	var out []int
	for j := range cells {
		if j == idx || cells[j].fixed || len(cells[j].values) == 0 {
			continue
		}
		o := cells[j].cell
		if o.Attr == c.Attr || o.Row == c.Row {
			out = append(out, j)
			if len(out) >= im.cfg.LookaheadCells {
				break
			}
		}
	}
	return out
}
