// Restaurant cleaning: the paper's motivating scenario end-to-end on the
// synthetic Restaurant dataset — a data-integration product full of
// near-duplicates (abbreviated names, phone-separator variants, city
// aliases).
//
//	go run ./examples/restaurant_cleaning
//
// The example generates the dataset, injects 5% missing values, discovers
// RFDcs at the paper's threshold limit 15, imputes with RENUVER, and
// scores the result with the paper's rule-based validator (phones match
// on digits, city aliases form value sets).
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	renuver "repro"
)

func main() {
	rel, err := renuver.GenerateDataset("restaurant", 400, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restaurant dataset: %d tuples x %d attributes\n",
		rel.Len(), rel.Schema().Len())

	dirty, injected, err := renuver.Inject(rel, 0.05, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("injected %d missing values (5%%)\n", len(injected))

	start := time.Now()
	sigma, err := renuver.DiscoverRFDs(rel, renuver.DiscoveryOptions{MaxThreshold: 15})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovered %d RFDcs at threshold limit 15 in %s\n",
		len(sigma), time.Since(start).Round(time.Millisecond))

	start = time.Now()
	res, err := renuver.Impute(dirty, sigma)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RENUVER imputed %d/%d cells in %s (%d verify rejections, %d key flips)\n",
		res.Stats.Imputed, res.Stats.MissingCells,
		time.Since(start).Round(time.Millisecond),
		res.Stats.VerifyRejections, res.Stats.KeyFlips)

	// The paper's rule-based validator: phone numbers compare on digits,
	// city aliases form value sets (Sec. 6.1).
	rules := `regex Phone: [0-9]
set City: Los Angeles | LA | L.A.
set City: New York | New York City | NY
set City: Hollywood | W. Hollywood
set City: Santa Monica | S. Monica
set Type: French | French (new)
set Type: American | American (new)
`
	validator, err := renuver.LoadRules(strings.NewReader(rules))
	if err != nil {
		log.Fatal(err)
	}
	strict := renuver.Score(res.Relation, injected, renuver.NewValidator())
	relaxed := renuver.Score(res.Relation, injected, validator)
	fmt.Printf("\nstrict equality:      %s\n", strict)
	fmt.Printf("rule-based validator: %s\n", relaxed)
	fmt.Println("\nthe gap is the paper's point: separator and alias variants are" +
		"\nsemantically correct imputations that strict equality misses.")
}
