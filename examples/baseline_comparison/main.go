// Baseline comparison: a miniature Figure 3 — RENUVER, Derand,
// Holoclean, and kNN on the same injected datasets, using only the
// public API.
//
//	go run ./examples/baseline_comparison
//
// Every method sees identical missing cells at rates 1-5%; precision,
// recall and F1 are printed per (method, rate) pair, the paper's
// reporting unit.
package main

import (
	"context"
	"fmt"
	"log"

	renuver "repro"
)

func main() {
	rel, err := renuver.GenerateDataset("glass", 150, 5)
	if err != nil {
		log.Fatal(err)
	}
	sigma, err := renuver.DiscoverRFDs(rel, renuver.DiscoveryOptions{MaxThreshold: 15})
	if err != nil {
		log.Fatal(err)
	}
	dcs := renuver.DiscoverDCs(rel, renuver.DCDiscoveryOptions{MaxViolationRate: 0.01, MinEvidence: 2})

	derandM, err := renuver.NewDerand(sigma, renuver.DerandOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	holoM, err := renuver.NewHoloclean(renuver.HolocleanOptions{DCs: dcs, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	knnM, err := renuver.NewKNN(renuver.KNNOptions{})
	if err != nil {
		log.Fatal(err)
	}
	methods := []renuver.Method{
		renuver.AsMethod(renuver.NewImputer(sigma)),
		derandM,
		holoM,
		knnM,
	}

	validator := renuver.NewValidator()
	for _, attr := range []string{"Na", "Mg", "Al", "Si", "K", "Ca", "Ba", "Fe"} {
		if err := validator.SetDelta(attr, 0.5); err != nil {
			log.Fatal(err)
		}
	}
	if err := validator.SetDelta("RI", 0.003); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("glass, %d tuples, |Σ|=%d, %d DCs\n\n", rel.Len(), len(sigma), len(dcs))
	fmt.Printf("%-12s %5s %10s %8s %6s\n", "method", "rate", "precision", "recall", "F1")
	for _, rate := range []float64{0.01, 0.03, 0.05} {
		dirty, injected, err := renuver.Inject(rel, rate, 42)
		if err != nil {
			log.Fatal(err)
		}
		for _, m := range methods {
			out, err := m.Impute(context.Background(), dirty)
			if err != nil {
				log.Fatal(err)
			}
			s := renuver.Score(out, injected, validator)
			fmt.Printf("%-12s %4.0f%% %10.3f %8.3f %6.3f\n",
				m.Name(), rate*100, s.Precision, s.Recall, s.F1)
		}
		fmt.Println()
	}
}
