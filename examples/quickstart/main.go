// Quickstart: impute the paper's own Table 2 sample with the public API.
//
//	go run ./examples/quickstart
//
// It loads the seven-restaurant instance from the paper, supplies the
// Figure 1 RFDc set, runs RENUVER, and prints every imputed cell with
// its provenance — reproducing the worked example of Sec. 5 (t7's phone
// must come from t2 after t3's candidate is rejected by the semantic
// consistency check).
package main

import (
	"fmt"
	"log"
	"os"

	renuver "repro"
)

const table2 = `Name,City,Phone,Type,Class
Granita,Malibu,310/456-0488,Californian,6
Chinois Main,LA,310-392-9025,French,5
Citrus,Los Angeles,213/857-0034,Californian,6
Citrus,Los Angeles,,Californian,6
Fenix,Hollywood,213/848-6677,,5
Fenix Argyle,,213/848-6677,French (new),5
C. Main,Los Angeles,,French,5
`

// figure1 lists φ1..φ7 as the paper's Figure 1 shows them.
var figure1 = []string{
	"Name(<=8), Phone(<=0), Class(<=1) -> Type(<=0)",
	"Class(<=0) -> Type(<=5)",
	"City(<=2) -> Phone(<=2)",
	"Name(<=4) -> Phone(<=1)",
	"Name(<=8), Phone(<=0) -> City(<=9)",
	"Name(<=6), City(<=9) -> Phone(<=0)",
	"Phone(<=1) -> Class(<=0)",
}

func main() {
	rel, err := renuver.LoadCSVString(table2)
	if err != nil {
		log.Fatal(err)
	}
	var sigma renuver.RFDSet
	for _, spec := range figure1 {
		dep, err := renuver.ParseRFD(spec, rel.Schema())
		if err != nil {
			log.Fatal(err)
		}
		sigma = append(sigma, dep)
	}

	fmt.Printf("input: %d tuples, %d missing cells, |Σ| = %d\n\n",
		rel.Len(), rel.CountMissing(), len(sigma))

	res, err := renuver.Impute(rel, sigma)
	if err != nil {
		log.Fatal(err)
	}
	for _, imp := range res.Imputations {
		fmt.Printf("t%d[%s] <- %q  (donor t%d, distance %.1f, cluster thr %g, attempt %d)\n",
			imp.Cell.Row+1, rel.Schema().Attr(imp.Cell.Attr).Name, imp.Value.String(),
			imp.Donor+1, imp.Distance, imp.ClusterThreshold, imp.Attempt)
	}
	fmt.Printf("\nimputed %d/%d; %d candidate(s) rejected by IS_FAULTLESS\n\n",
		res.Stats.Imputed, res.Stats.MissingCells, res.Stats.VerifyRejections)

	fmt.Println("imputed instance:")
	if err := renuver.SaveCSV(os.Stdout, res.Relation); err != nil {
		log.Fatal(err)
	}
}
