// Sensor imputation: RENUVER vs the grey-based kNN baseline on purely
// numeric data — the Glass-style scenario of Figure 3 (panels d-f),
// where the paper compares against kNN because the dataset "contains
// only numerical values".
//
//	go run ./examples/sensor_imputation
//
// Chemical-composition readings (eight oxide fractions + refractive
// index) lose 4% of their values; both methods fill them and are scored
// with per-attribute delta rules, the paper's third rule type.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	renuver "repro"
)

func main() {
	rel, err := renuver.GenerateDataset("glass", 214, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("glass dataset: %d tuples x %d attributes (all numeric)\n",
		rel.Len(), rel.Schema().Len())

	dirty, injected, err := renuver.Inject(rel, 0.04, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("injected %d missing readings (4%%)\n\n", len(injected))

	// Delta rules: a reading is correct within the tolerance of its
	// attribute (Sec. 6.1, "delta variation").
	validator, err := renuver.LoadRules(strings.NewReader(`delta RI: 0.003
delta Na: 0.6
delta Mg: 0.5
delta Al: 0.3
delta Si: 0.8
delta K: 0.2
delta Ca: 0.6
delta Ba: 0.3
delta Fe: 0.1
`))
	if err != nil {
		log.Fatal(err)
	}

	// RENUVER with RFDcs discovered at threshold limit 15 (the setting
	// the paper uses for Glass in Figure 3).
	sigma, err := renuver.DiscoverRFDs(rel, renuver.DiscoveryOptions{MaxThreshold: 15})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	res, err := renuver.Impute(dirty, sigma)
	if err != nil {
		log.Fatal(err)
	}
	rTime := time.Since(start)
	rScore := renuver.Score(res.Relation, injected, validator)

	// Grey-based kNN (Huang & Lee 2004), k = 5.
	kn, err := renuver.NewKNN(renuver.KNNOptions{K: 5})
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	knnOut, err := kn.Impute(context.Background(), dirty)
	if err != nil {
		log.Fatal(err)
	}
	kTime := time.Since(start)
	kScore := renuver.Score(knnOut, injected, validator)

	fmt.Printf("%-22s (|Σ|=%d)  %s   time %s\n", "RENUVER", len(sigma), rScore, rTime.Round(time.Millisecond))
	fmt.Printf("%-22s          %s   time %s\n", kn.Name(), kScore, kTime.Round(time.Millisecond))
	fmt.Println("\nRENUVER abstains when no candidate passes verification — its" +
		"\nprecision stays high while kNN always guesses a weighted mean.")
}
