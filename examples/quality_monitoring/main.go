// Quality monitoring: keep a dependency set healthy while data streams
// in, then use it to repair the accumulated instance — the full Sec. 7
// loop (incremental RFDc maintenance + arrival-time imputation) plus the
// distribution-aware threshold caps.
//
//	go run ./examples/quality_monitoring
//
// A physician registry ingests records, some of them corrupted. The
// maintainer tightens or drops RFDcs the corrupt arrivals violate, so Σ
// always holds on the data seen so far; the maintained Σ then drives
// RENUVER over the records that arrived with missing fields.
package main

import (
	"fmt"
	"log"
	"math/rand"

	renuver "repro"
)

func main() {
	full, err := renuver.GenerateDataset("physician", 360, 21)
	if err != nil {
		log.Fatal(err)
	}
	base := full.Head(200)

	// Distribution-aware caps keep wide-domain attributes (names,
	// streets) from dominating the threshold budget.
	limits := renuver.AdaptiveThresholdLimits(base, 0.25, 20000, 1)
	sigma, err := renuver.DiscoverRFDs(base, renuver.DiscoveryOptions{
		MaxThreshold: 3, MaxPairs: 20000, AttrLimits: limits,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("base: %d records, adaptive caps on %d attributes, |Σ| = %d\n",
		base.Len(), len(limits), len(sigma))

	mt := renuver.NewRFDMaintainer(base, sigma)
	rng := rand.New(rand.NewSource(7))

	// Ingest 160 arrivals; ~15% get a corrupted cell (wrong value, not a
	// missing one — the maintainer's problem), ~20% a missing cell
	// (RENUVER's problem, handled after ingestion).
	var missingArrivals int
	for i := 200; i < 360; i++ {
		t := full.Row(i).Clone()
		switch {
		case rng.Float64() < 0.15:
			// Corrupt a categorical cell with a random value.
			t[3] = renuver.NewString([]string{"M", "F", "X", "U"}[rng.Intn(4)])
		case rng.Float64() < 0.20:
			t[rng.Intn(len(t))] = renuver.Null
			missingArrivals++
		}
		if _, _, err := mt.Append(t); err != nil {
			log.Fatal(err)
		}
	}
	dropped, tightened := mt.Stats()
	fmt.Printf("after 160 arrivals: %d RFDcs dropped, %d tightened, |Σ| = %d (always holding)\n",
		dropped, tightened, len(mt.Sigma()))

	// Sanity: every maintained dependency really holds on the full
	// accumulated instance.
	violated := 0
	for _, dep := range mt.Sigma() {
		if !dep.HoldsOn(mt.Relation()) {
			violated++
		}
	}
	fmt.Printf("maintained Σ violated on accumulated data: %d (must be 0)\n", violated)

	// Repair the accumulated instance with the maintained set.
	res, err := renuver.Impute(mt.Relation(), mt.Sigma())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repair pass: %d of %d missing cells imputed (%d arrivals had holes)\n",
		res.Stats.Imputed, res.Stats.MissingCells, missingArrivals)
}
