// Stream imputation: the incremental-scenario extension of Sec. 7 —
// tuples arrive one at a time (think a physician registry ingesting
// records) and RENUVER imputes each arrival's missing values on the
// spot, with earlier arrivals becoming donors for later ones. A periodic
// RetryMissing pass fills the backlog once donors have accumulated.
//
//	go run ./examples/stream_imputation
//
// The example also exercises the multi-dataset extension: a reference
// dataset (a second registry extract) supplies candidate tuples the
// stream itself cannot.
package main

import (
	"fmt"
	"log"

	renuver "repro"
)

func main() {
	// The "historical" instance the stream starts from and a reference
	// extract acting as an external donor pool.
	full, err := renuver.GenerateDataset("physician", 400, 9)
	if err != nil {
		log.Fatal(err)
	}
	base := full.Head(150)
	reference, err := renuver.GenerateDataset("physician", 200, 10)
	if err != nil {
		log.Fatal(err)
	}

	sigma, err := renuver.DiscoverRFDs(base, renuver.DiscoveryOptions{
		MaxThreshold: 3, MaxPairs: 20000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("base: %d tuples, reference: %d tuples, |Σ| = %d\n\n",
		base.Len(), reference.Len(), len(sigma))

	im := renuver.NewImputer(sigma)
	stream := im.NewStream(base)

	// Feed 100 arrivals, damaging one random-ish cell in every third
	// tuple (simulating partial records at ingest time).
	arrivals, damaged, filledOnArrival := 0, 0, 0
	for i := 150; i < 250; i++ {
		t := full.Row(i).Clone()
		if i%3 == 0 {
			t[(i/3)%len(t)] = renuver.Null
			damaged++
		}
		imps, err := stream.Append(t)
		if err != nil {
			log.Fatal(err)
		}
		arrivals++
		filledOnArrival += len(imps)
	}
	fmt.Printf("streamed %d arrivals, %d damaged cells, %d filled on arrival\n",
		arrivals, damaged, filledOnArrival)

	// Retry the backlog now that more donors exist.
	retried := stream.RetryMissing()
	fmt.Printf("backlog retry filled %d more\n", len(retried))

	// The multi-dataset extension: cells still missing can consult the
	// reference extract.
	remaining := stream.Relation().CountMissing()
	res, err := im.ImputeWithDonors(stream.Relation(), []*renuver.Relation{reference})
	if err != nil {
		log.Fatal(err)
	}
	external := 0
	for _, imp := range res.Imputations {
		if imp.DonorSource >= 0 {
			external++
		}
	}
	fmt.Printf("donor-pool pass: %d still missing -> %d (of which %d values came from the reference extract)\n",
		remaining, res.Relation.CountMissing(), external)

	st := stream.Stats()
	fmt.Printf("\nstream stats: %d missing seen, %d imputed, %d left, %d candidates evaluated, %d verify rejections\n",
		st.MissingCells, st.Imputed, st.Unimputed, st.CandidatesEvaluated, st.VerifyRejections)
}
