package renuver

import (
	"context"
	"fmt"
	"testing"
)

// TestMethodDatasetMatrix runs every imputation method in the repository
// against every synthetic dataset at a small size, checking the shared
// contract: no error, input untouched, shape preserved, only missing
// cells filled, metrics in range.
func TestMethodDatasetMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix sweep in -short mode")
	}
	for _, name := range DatasetNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			rel, err := GenerateDataset(name, 60, 11)
			if err != nil {
				t.Fatal(err)
			}
			sigma, err := DiscoverRFDs(rel, DiscoveryOptions{MaxThreshold: 6, MaxPairs: 2000})
			if err != nil {
				t.Fatal(err)
			}
			dcs := DiscoverDCs(rel, DCDiscoveryOptions{MaxViolationRate: 0.02, MinEvidence: 1, MaxPairs: 2000})
			dirty, injected, err := Inject(rel, 0.06, 3)
			if err != nil {
				t.Fatal(err)
			}

			methods := buildAllMethods(t, sigma, dcs)
			for _, m := range methods {
				m := m
				t.Run(m.Name(), func(t *testing.T) {
					before := dirty.CountMissing()
					out, err := m.Impute(context.Background(), dirty)
					if err != nil {
						t.Fatal(err)
					}
					if dirty.CountMissing() != before {
						t.Fatal("method mutated its input")
					}
					if out.Len() != dirty.Len() || out.Schema().Len() != dirty.Schema().Len() {
						t.Fatal("method changed the shape")
					}
					for i := 0; i < dirty.Len(); i++ {
						for a := 0; a < dirty.Schema().Len(); a++ {
							if !dirty.Get(i, a).IsNull() && !dirty.Get(i, a).Equal(out.Get(i, a)) {
								t.Fatalf("observed cell (%d,%d) changed", i, a)
							}
						}
					}
					s := Score(out, injected, NewValidator())
					for label, v := range map[string]float64{
						"precision": s.Precision, "recall": s.Recall, "f1": s.F1,
					} {
						if v < 0 || v > 1 {
							t.Errorf("%s = %v out of range", label, v)
						}
					}
				})
			}
		})
	}
}

func buildAllMethods(t *testing.T, sigma RFDSet, dcs []*DC) []Method {
	t.Helper()
	kn, err := NewKNN(KNNOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dr, err := NewDerand(sigma, DerandOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := NewDerand(sigma, DerandOptions{Seed: 1, Mode: 1}) // Randomized
	if err != nil {
		t.Fatal(err)
	}
	hc, err := NewHoloclean(HolocleanOptions{DCs: dcs, Seed: 1, TrainSamples: 40})
	if err != nil {
		t.Fatal(err)
	}
	lr, err := NewLocalRegression(RegressionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := NewDerandExact(sigma, DerandOptions{}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	return []Method{
		AsMethod(NewImputer(sigma)),
		AsMethod(NewImputer(sigma, WithWorkers(2))),
		kn, dr, rnd, hc, NewMeanMode(), lr, ex,
	}
}

// TestStreamVsBatchMatrix: for every dataset, streaming all tuples with
// retry ends with no more missing cells than the batch run.
func TestStreamVsBatchMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix sweep in -short mode")
	}
	for _, name := range DatasetNames() {
		rel, err := GenerateDataset(name, 40, 5)
		if err != nil {
			t.Fatal(err)
		}
		sigma, err := DiscoverRFDs(rel, DiscoveryOptions{MaxThreshold: 6, MaxPairs: 1000})
		if err != nil {
			t.Fatal(err)
		}
		dirty, _, err := Inject(rel, 0.05, 9)
		if err != nil {
			t.Fatal(err)
		}
		batch, err := Impute(dirty, sigma)
		if err != nil {
			t.Fatal(err)
		}
		stream := NewImputer(sigma).NewStream(dirty.Head(0))
		for i := 0; i < dirty.Len(); i++ {
			if _, err := stream.Append(dirty.Row(i)); err != nil {
				t.Fatal(err)
			}
		}
		stream.RetryMissing()
		if got, want := stream.Relation().CountMissing(), batch.Relation.CountMissing(); got > want {
			t.Errorf("%s: stream left %d missing, batch %d", name, got, want)
		}
	}
}

// TestProvenanceAuditMatrix: every recorded imputation must point at a
// donor that actually carries the imputed value (in the final instance).
func TestProvenanceAuditMatrix(t *testing.T) {
	for _, name := range []string{"restaurant", "physician"} {
		rel, err := GenerateDataset(name, 80, 13)
		if err != nil {
			t.Fatal(err)
		}
		sigma, err := DiscoverRFDs(rel, DiscoveryOptions{MaxThreshold: 9, MaxPairs: 3000})
		if err != nil {
			t.Fatal(err)
		}
		dirty, _, err := Inject(rel, 0.05, 17)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Impute(dirty, sigma)
		if err != nil {
			t.Fatal(err)
		}
		for _, imp := range res.Imputations {
			donorVal := res.Relation.Get(imp.Donor, imp.Cell.Attr)
			if !donorVal.Equal(imp.Value) {
				t.Errorf("%s: imputation %+v: donor row carries %v", name, imp, donorVal)
			}
			if imp.Attempt < 1 || imp.Distance < 0 {
				t.Errorf("%s: malformed provenance %+v", name, imp)
			}
		}
		_ = fmt.Sprintf("%v", res.Stats) // Stats must be printable
	}
}
