// Package renuver is the public API of this repository: a Go
// implementation of RENUVER (Breve, Caruccio, Deufemia, Polese — "RENUVER:
// A Missing Value Imputation Algorithm based on Relaxed Functional
// Dependencies", EDBT 2022) together with every substrate the paper's
// evaluation depends on — a relational engine with typed nulls, RFDc
// discovery, denial constraints, three comparison baselines (grey-based
// kNN, Derand, a Holoclean-style probabilistic repairer), missing-value
// injection, and the paper's rule-based result validator.
//
// Quick start:
//
//	rel, _ := renuver.LoadCSVFile("restaurant.csv")
//	sigma, _ := renuver.DiscoverRFDs(rel, renuver.DiscoveryOptions{MaxThreshold: 15})
//	res, _ := renuver.Impute(rel, sigma)
//	fmt.Println(res.Stats.Imputed, "cells filled")
//
// The exported names are thin aliases over the internal packages, so the
// full documented behaviour lives with the implementations.
package renuver

import (
	"context"
	"io"
	"net/http"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/dc"
	"repro/internal/discovery"
	"repro/internal/distance"
	"repro/internal/engine"
	"repro/internal/eval"
	"repro/internal/impute"
	"repro/internal/impute/derand"
	"repro/internal/impute/holoclean"
	"repro/internal/impute/knn"
	"repro/internal/impute/meanmode"
	"repro/internal/impute/regression"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/profile"
	"repro/internal/rfd"
)

// Relational substrate.
type (
	// Relation is a mutable relation instance over a fixed schema.
	Relation = dataset.Relation
	// Schema is an ordered attribute list.
	Schema = dataset.Schema
	// Attribute is one schema column.
	Attribute = dataset.Attribute
	// Tuple is one positional row.
	Tuple = dataset.Tuple
	// Value is one typed cell; the zero Value is the missing value.
	Value = dataset.Value
	// Cell addresses a (row, attribute) position.
	Cell = dataset.Cell
	// Kind enumerates value domains.
	Kind = dataset.Kind
)

// Value constructors and kinds, re-exported for building relations
// programmatically.
var (
	NewString = dataset.NewString
	NewInt    = dataset.NewInt
	NewFloat  = dataset.NewFloat
	NewBool   = dataset.NewBool
	Null      = dataset.Null
)

// Value kind constants.
const (
	KindNull   = dataset.KindNull
	KindString = dataset.KindString
	KindInt    = dataset.KindInt
	KindFloat  = dataset.KindFloat
	KindBool   = dataset.KindBool
)

// NewSchema builds a schema from attributes.
func NewSchema(attrs ...Attribute) *Schema { return dataset.NewSchema(attrs...) }

// NewRelation returns an empty relation over the schema.
func NewRelation(schema *Schema) *Relation { return dataset.NewRelation(schema) }

// LoadCSV reads a relation from CSV with per-column type inference.
func LoadCSV(r io.Reader) (*Relation, error) { return dataset.ReadCSV(r) }

// LoadCSVFile is LoadCSV over a file path.
func LoadCSVFile(path string) (*Relation, error) { return dataset.ReadCSVFile(path) }

// LoadCSVString is LoadCSV over an in-memory document.
func LoadCSVString(doc string) (*Relation, error) { return dataset.ReadCSVString(doc) }

// SaveCSV writes a relation as CSV.
func SaveCSV(w io.Writer, rel *Relation) error { return dataset.WriteCSV(w, rel) }

// SaveCSVFile is SaveCSV to a file path.
func SaveCSVFile(path string, rel *Relation) error { return dataset.WriteCSVFile(path, rel) }

// LoadJSONLines reads a relation from newline-delimited JSON objects
// (union schema, alphabetical attribute order, JSON null = missing).
func LoadJSONLines(r io.Reader) (*Relation, error) { return dataset.ReadJSONLines(r) }

// LoadJSONLinesFile is LoadJSONLines over a file path.
func LoadJSONLinesFile(path string) (*Relation, error) { return dataset.ReadJSONLinesFile(path) }

// SaveJSONLines writes a relation as newline-delimited JSON objects.
func SaveJSONLines(w io.Writer, rel *Relation) error { return dataset.WriteJSONLines(w, rel) }

// SaveJSONLinesFile is SaveJSONLines to a file path.
func SaveJSONLinesFile(path string, rel *Relation) error {
	return dataset.WriteJSONLinesFile(path, rel)
}

// Relaxed functional dependencies.
type (
	// RFD is one RFDc: X_Φ1 → A_φ2 with distance thresholds.
	RFD = rfd.RFD
	// RFDSet is a set Σ of RFDcs.
	RFDSet = rfd.Set
	// Constraint is one per-attribute distance threshold.
	Constraint = rfd.Constraint
)

// ParseRFD reads an RFDc in textual form, e.g.
// "Name(<=4), City(<=9) -> Phone(<=0)".
func ParseRFD(s string, schema *Schema) (*RFD, error) { return rfd.Parse(s, schema) }

// LoadRFDs reads an RFDc set written by SaveRFDs (one per line).
func LoadRFDs(r io.Reader, schema *Schema) (RFDSet, error) { return rfd.ReadSet(r, schema) }

// LoadRFDsFile is LoadRFDs over a file path.
func LoadRFDsFile(path string, schema *Schema) (RFDSet, error) {
	return rfd.ReadSetFile(path, schema)
}

// SaveRFDs writes an RFDc set one dependency per line.
func SaveRFDs(w io.Writer, sigma RFDSet, schema *Schema) error {
	return rfd.WriteSet(w, sigma, schema)
}

// SaveRFDsFile is SaveRFDs to a file path.
func SaveRFDsFile(path string, sigma RFDSet, schema *Schema) error {
	return rfd.WriteSetFile(path, sigma, schema)
}

// DiscoveryOptions tunes RFDc discovery; see the discovery package for
// field semantics.
type DiscoveryOptions = discovery.Config

// DiscoverRFDs finds RFDcs holding on the instance under a maximum
// threshold limit (the paper's {3, 6, 9, 12, 15} sweep).
func DiscoverRFDs(rel *Relation, opts DiscoveryOptions) (RFDSet, error) {
	return discovery.Discover(rel, opts)
}

// DiscoverRFDsContext is DiscoverRFDs under a context. Discovery is
// abort-and-discard: a cancelled run returns a nil set and an error
// matching ErrCanceled, never a partial set.
func DiscoverRFDsContext(ctx context.Context, rel *Relation, opts DiscoveryOptions) (RFDSet, error) {
	return discovery.DiscoverContext(ctx, rel, opts)
}

// AdaptiveThresholdLimits computes per-attribute threshold caps from the
// attribute's pairwise-distance distribution (the Sec. 7 extension:
// thresholds with "an upper bound dependent from attribute domains and
// value distributions"). Feed the result to DiscoveryOptions.AttrLimits.
func AdaptiveThresholdLimits(rel *Relation, quantile float64, maxPairs int, seed int64) []float64 {
	return discovery.AdaptiveAttrLimits(rel, quantile, maxPairs, seed)
}

// AdaptiveThresholdLimitsWorkers is AdaptiveThresholdLimits with the
// exhaustive pair scan chunked across workers (0 = all CPUs). The caps
// are identical for every worker count.
func AdaptiveThresholdLimitsWorkers(rel *Relation, quantile float64, maxPairs int, seed int64, workers int) []float64 {
	return discovery.AdaptiveAttrLimitsWorkers(rel, quantile, maxPairs, seed, workers)
}

// The RENUVER imputer.
type (
	// Imputer runs RENUVER for one Σ and option set.
	Imputer = core.Imputer
	// Result is one imputation run's outcome.
	Result = core.Result
	// Imputation records one filled cell with provenance.
	Imputation = core.Imputation
	// Stats aggregates run counters.
	Stats = core.Stats
	// PhaseTimes is the per-phase wall-clock breakdown in Stats.Phases.
	PhaseTimes = core.PhaseTimes
	// Option tunes the imputer.
	Option = core.Option
	// Stream is the incremental-imputation session of the Sec. 7
	// extension: tuples are appended one at a time and imputed on
	// arrival (create one with Imputer.NewStream).
	Stream = core.Stream
)

// Imputer options, re-exported from internal/core.
var (
	WithClusterOrder       = core.WithClusterOrder
	WithVerifyMode         = core.WithVerifyMode
	WithoutClustering      = core.WithoutClustering
	WithoutRanking         = core.WithoutRanking
	WithoutKeyReevaluation = core.WithoutKeyReevaluation
	WithMaxCandidates      = core.WithMaxCandidates
	WithWorkers            = core.WithWorkers
	WithDonorShards        = core.WithDonorShards
	WithRecorder           = core.WithRecorder
	WithTracer             = core.WithTracer
)

// Observability. Every Impute* call fills Result.Stats unconditionally;
// a Recorder additionally aggregates counters, histograms, and phase
// timings across runs (see the README's "Observability" section).
type (
	// Recorder receives pipeline events; pass one with WithRecorder.
	Recorder = obs.Recorder
	// MetricsRecorder is the concrete lock-free Recorder: atomic
	// counters, fixed-bound histograms, and per-phase wall clock.
	MetricsRecorder = obs.Metrics
	// MetricsSnapshot is a point-in-time copy of a MetricsRecorder.
	MetricsSnapshot = obs.Snapshot
	// Counter identifies one aggregate counter of a MetricsRecorder.
	Counter = obs.Counter
	// Histogram identifies one distribution metric of a MetricsRecorder.
	Histogram = obs.Hist
)

// Serve-mode metrics: the admission-gate counters and the queue
// distributions `renuver serve` records into its recorder.
const (
	CtrServeAccepted         = obs.CtrServeAccepted
	CtrServeRejected         = obs.CtrServeRejected
	CtrServeTimeouts         = obs.CtrServeTimeouts
	CtrServePanics           = obs.CtrServePanics
	HistServeQueueDepth      = obs.HistServeQueueDepth
	HistServeQueueWaitMicros = obs.HistServeQueueWaitMicros
)

// HistogramSnapshot is one histogram's point-in-time state, including
// the derived p50/p95/p99 estimates.
type HistogramSnapshot = obs.HistSnapshot

// Request-scoped span telemetry. A serve-mode middleware (or any caller)
// opens a RequestTrace with StartRequest; spans started from the
// returned context nest under it, and finished traces land in a bounded
// SpanRing served by SpansHandler (`/debug/spans`). On a context without
// a trace every span operation is an inert nil check — the disabled
// path allocates nothing.
type (
	// Span is one timed operation inside a RequestTrace. The zero Span is
	// valid and disabled.
	Span = obs.Span
	// SpanContext is the W3C trace-context identity of a span
	// (traceparent form via its Traceparent method).
	SpanContext = obs.SpanContext
	// RequestTrace is one request's span tree.
	RequestTrace = obs.Trace
	// SpanRing retains the last N completed request traces.
	SpanRing = obs.SpanRing
	// SpanNode is one node of an exported span tree.
	SpanNode = obs.SpanNode
)

// ParseTraceparent parses a W3C traceparent header value, reporting
// ok=false on malformed input (callers then mint a fresh trace).
func ParseTraceparent(s string) (SpanContext, bool) { return obs.ParseTraceparent(s) }

// NewSpanRing returns a ring retaining the last `capacity` completed
// request traces (<=0 = default 64).
func NewSpanRing(capacity int) *SpanRing { return obs.NewSpanRing(capacity) }

// StartRequest opens a request trace (optionally linked under an
// upstream traceparent), registers it with the ring (nil = no
// retention), and returns a derived context whose spans nest under it.
// Call Finish on the returned trace when the request completes.
func StartRequest(ctx context.Context, ring *SpanRing, name string, parent SpanContext) (context.Context, *RequestTrace) {
	return obs.StartRequest(ctx, ring, name, parent)
}

// SpanFromContext returns the context's current span, or the zero
// (disabled) Span. The lookup never allocates.
func SpanFromContext(ctx context.Context) Span { return obs.SpanFromContext(ctx) }

// ContextWithSpan re-anchors the context on a span, nesting later
// spans under it.
func ContextWithSpan(ctx context.Context, s Span) context.Context {
	return obs.ContextWithSpan(ctx, s)
}

// SpansHandler serves the ring's retained traces as JSON span trees —
// the `/debug/spans` endpoint of `renuver serve` (404 on a nil ring).
func SpansHandler(ring *SpanRing) http.Handler { return obs.SpansHandler(ring) }

// Labeled metric families and the registry composing them with a
// MetricsRecorder into one /metrics surface (JSON and Prometheus).
type (
	// MetricsRegistry composes a MetricsRecorder with labeled collectors.
	MetricsRegistry = obs.Registry
	// MetricsCollector is one extra family in a MetricsRegistry.
	MetricsCollector = obs.Collector
	// HistVec is a fixed-label-set histogram family (per-route latency).
	HistVec = obs.HistVec
	// ConstGauge is a constant info gauge (renuver_build_info).
	ConstGauge = obs.ConstGauge
	// MetricLabel is one key/value pair on a ConstGauge.
	MetricLabel = obs.Label
	// ShardStat is one cache shard's counters as exposed on /metrics.
	ShardStat = obs.ShardStat
	// CacheShardStat is the engine-side form of ShardStat, returned by
	// Session.CacheShardStats.
	CacheShardStat = engine.CacheShardStat
	// DonorShardStat is one donor sub-pool's scatter-gather counters,
	// returned by Session.DonorShardStats and exposed on /metrics.
	DonorShardStat = obs.DonorShardStat
)

// NewMetricsRegistry wraps a MetricsRecorder (nil = a fresh one).
func NewMetricsRegistry(m *MetricsRecorder) *MetricsRegistry { return obs.NewRegistry(m) }

// NewHistVec builds a histogram family with one series per label value;
// the label set is frozen at construction.
func NewHistVec(name, help, labelKey string, labels []string, bounds []float64) *HistVec {
	return obs.NewHistVec(name, help, labelKey, labels, bounds)
}

// NewConstGauge builds a constant gauge whose payload is its labels.
func NewConstGauge(name, help string, value float64, labels ...MetricLabel) *ConstGauge {
	return obs.NewConstGauge(name, help, value, labels...)
}

// NewFuncGauge builds a gauge whose value is read from fn at every
// scrape — e.g. the live-session epoch `renuver serve` exports.
func NewFuncGauge(name, help string, fn func() float64) *obs.FuncGauge {
	return obs.NewFuncGauge(name, help, fn)
}

// NewShardStatsCollector exposes a sharded cache's per-shard counters,
// labeled by shard index, under renuver_<name>_{hits,misses,merges}_total.
func NewShardStatsCollector(name string, fn func() []ShardStat) *obs.ShardStatsCollector {
	return obs.NewShardStatsCollector(name, fn)
}

// NewDonorShardStatsCollector exposes a sharded donor pool's per-sub-pool
// scatter-gather counters, labeled by shard index, under
// renuver_<name>_{scans,donors,candidates}_total.
func NewDonorShardStatsCollector(name string, fn func() []DonorShardStat) *obs.DonorShardStatsCollector {
	return obs.NewDonorShardStatsCollector(name, fn)
}

// ActiveKernelName names the Levenshtein kernel currently selected
// process-wide ("auto", "myers", "banded") — the build-info metric's
// kernel label.
func ActiveKernelName() string { return distance.ActiveKernel().String() }

// Provenance tracing. A Tracer records per-cell decision traces —
// which donors were considered at what Eq. 2 distance, which RFDc vetoed
// a candidate (with the witness tuple), and why each cell resolved the
// way it did. Pass one with WithTracer; query traced cells on the Result
// with Result.Explain / Result.ExplainText.
type (
	// Tracer receives per-cell decision traces; pass one with WithTracer.
	Tracer = obs.Tracer
	// TraceEvent is one step of a cell's decision trace.
	TraceEvent = obs.TraceEvent
	// TraceEventKind enumerates trace event types.
	TraceEventKind = obs.EventKind
	// AttrDist is one per-attribute distance inside a DonorConsidered
	// event.
	AttrDist = obs.AttrDist
	// RingTracer is the concrete bounded Tracer: last-N cell traces with
	// deterministic every-Nth sampling, JSONL export, and an HTTP view.
	RingTracer = obs.RingTracer
)

// Trace event kinds.
const (
	EvCellStarted       = obs.EvCellStarted
	EvRuleSelected      = obs.EvRuleSelected
	EvDonorConsidered   = obs.EvDonorConsidered
	EvCandidateRejected = obs.EvCandidateRejected
	EvFaultlessVerdict  = obs.EvFaultlessVerdict
	EvCellResolved      = obs.EvCellResolved
	EvCellAbandoned     = obs.EvCellAbandoned
	EvRuleEmitted       = obs.EvRuleEmitted
	EvTraceTruncated    = obs.EvTraceTruncated
)

// NewRingTracer returns a bounded tracer retaining the last `capacity`
// cell traces (0 = default 256) and sampling every `sample`-th cell
// deterministically (<=1 = every cell).
func NewRingTracer(capacity, sample int) *RingTracer { return obs.NewRingTracer(capacity, sample) }

// TraceHandler serves the most recent cell trace as a JSON array — the
// `/trace/last` endpoint of `renuver serve`.
func TraceHandler(t *RingTracer) http.Handler { return obs.TraceHandler(t) }

// NewMetricsRecorder returns an empty metrics sink, safe for concurrent
// runs.
func NewMetricsRecorder() *MetricsRecorder { return obs.NewMetrics() }

// GlobalMetrics returns the process-wide sink that the distance layer
// (Levenshtein calls and early-exit hits) records into when enabled via
// SetGlobalMetricsEnabled. `renuver serve` uses it as its one sink.
func GlobalMetrics() *MetricsRecorder { return obs.Global() }

// SetGlobalMetricsEnabled turns the process-wide sink on or off. Off by
// default: the disabled hot path costs a single atomic load.
func SetGlobalMetricsEnabled(on bool) { obs.SetGlobalEnabled(on) }

// MetricsHandler serves a JSON snapshot of the recorder (expvar-style).
func MetricsHandler(m *MetricsRecorder) http.Handler { return obs.Handler(m) }

// MountDebugHandlers attaches the net/http/pprof endpoints under
// /debug/pprof/ on the mux.
func MountDebugHandlers(mux *http.ServeMux) { obs.MountDebug(mux) }

// Cluster traversal orders and verification modes.
const (
	AscendingThreshold  = core.AscendingThreshold
	DescendingThreshold = core.DescendingThreshold
	VerifyLHS           = core.VerifyLHS
	VerifyBothSides     = core.VerifyBothSides
	VerifyOff           = core.VerifyOff
)

// NewImputer returns a reusable RENUVER imputer over Σ.
func NewImputer(sigma RFDSet, opts ...Option) *Imputer { return core.New(sigma, opts...) }

// Session is the compile-once serve-many form of the imputer: construct
// it once over a base instance (compiling columnar form, interning
// tables, and the memoized distance cache up front), then serve any
// number of concurrent Impute / Explain / Discover calls against the
// shared read-only artifacts. See internal/core.Session for the full
// contract.
type Session = core.Session

// NewSession builds a Session over Σ. A non-nil base becomes the donor
// pool of every request (its tuples are compiled once and shared); a nil
// base makes every request self-contained. Options are validated here,
// once, instead of on every request.
func NewSession(base *Relation, sigma RFDSet, opts ...Option) (*Session, error) {
	return core.NewSession(base, sigma, opts...)
}

// Live-data sessions. A Session with a base is mutated exclusively
// through Session.ApplyDelta, which publishes each applied batch as a
// new immutable epoch: concurrent Impute / Explain calls pin one epoch
// for their whole duration and are never disturbed, and the result at
// every epoch is byte-identical to a from-scratch NewSession over the
// mutated relation.
//
// Deprecated pattern: mutating the Relation passed to NewSession after
// construction never worked (the base is cloned at compile time) —
// sessions that need live data must go through ApplyDelta.
type (
	// Delta is one atomic batch of base mutations: inserts, cell
	// updates, and row deletes, addressed in the pre-delta epoch's row
	// numbering. The same type is the body of the server's POST
	// /v1/delta and the input of the `renuver delta` CLI verb.
	Delta = core.Delta
	// CellUpdate assigns one value to one existing cell.
	CellUpdate = core.CellUpdate
	// DeltaResult reports what one ApplyDelta published: the new epoch,
	// row count, applied mutation counts, and the Σ repairs and cache
	// invalidation the delta caused.
	DeltaResult = core.DeltaResult
)

// Parallelism bundles the three independent parallelism knobs the
// pipeline exposes — scan workers (WithWorkers / DiscoveryOptions.
// Workers), discovery shards (DiscoveryOptions.Shards), and donor-pool
// sub-pools (WithDonorShards) — under one validation rule: 0 means
// default, negatives and values above the shared bound are rejected.
// Both CLIs and the option validators all delegate to this one rule.
type Parallelism = par.Parallelism

// CheckParallelism validates one parallelism knob value (0 = default),
// naming the knob in the error.
func CheckParallelism(name string, v int) error { return par.Check(name, v) }

// MaxParallelism is the shared upper bound CheckParallelism enforces on
// every parallelism knob.
const MaxParallelism = par.Max

// ArtifactInfo summarizes a compiled-session artifact: format version,
// whole-file checksum, tuple count, arity, |Σ|, and encoded size. A
// session loaded from (or saved to) an artifact reports it via
// Session.Artifact.
type ArtifactInfo = core.ArtifactInfo

// ArtifactFormatVersion is the compiled-session artifact layout version
// this build writes and accepts.
const ArtifactFormatVersion = artifact.FormatVersion

// LoadSession reconstructs a serving Session from a compiled-session
// artifact file (the output of `renuver compile`), skipping RFD
// discovery and engine compilation entirely — the replica boot path
// behind `renuver serve -artifact`.
func LoadSession(path string, opts ...Option) (*Session, error) {
	return core.LoadSession(path, opts...)
}

// NewSessionFromArtifact is LoadSession over in-memory artifact bytes
// (e.g. an mmap'ed file); the data is not retained after decode.
func NewSessionFromArtifact(data []byte, opts ...Option) (*Session, error) {
	return core.NewSessionFromArtifact(data, opts...)
}

// ErrCanceled is the sentinel every context-aware entry point wraps when
// a run stops because its context expired. errors.Is matches both this
// sentinel and the context's own error (context.Canceled or
// context.DeadlineExceeded) on the returned error.
var ErrCanceled = engine.ErrCanceled

// Impute runs RENUVER once over the instance with the given Σ and
// options. The input is not mutated. It is ImputeContext with a
// background context.
func Impute(rel *Relation, sigma RFDSet, opts ...Option) (*Result, error) {
	return ImputeContext(context.Background(), rel, sigma, opts...)
}

// ImputeContext is Impute under a context: a one-shot ephemeral Session.
// A cancelled run returns the well-formed partial Result produced so far
// together with an error matching ErrCanceled and the context's error.
func ImputeContext(ctx context.Context, rel *Relation, sigma RFDSet, opts ...Option) (*Result, error) {
	return core.New(sigma, opts...).ImputeContext(ctx, rel)
}

// Method is the interface shared by RENUVER and the baselines: impute a
// clone under a context, never mutate the input.
type Method = impute.Method

// renuverMethod adapts the RENUVER imputer to the Method interface.
type renuverMethod struct{ im *core.Imputer }

func (r renuverMethod) Name() string { return "RENUVER" }
func (r renuverMethod) Impute(ctx context.Context, rel *Relation) (*Relation, error) {
	res, err := r.im.ImputeContext(ctx, rel)
	if res == nil {
		return nil, err
	}
	return res.Relation, err
}

// AsMethod wraps a RENUVER imputer as a Method for side-by-side
// comparison with the baselines.
func AsMethod(im *Imputer) Method { return renuverMethod{im: im} }

// Baselines.
type (
	// KNNOptions tunes the grey-based kNN baseline [14].
	KNNOptions = knn.Config
	// DerandOptions tunes the Derand baseline [23].
	DerandOptions = derand.Config
	// HolocleanOptions tunes the Holoclean-style baseline [20].
	HolocleanOptions = holoclean.Config
	// DC is one denial constraint.
	DC = dc.DC
	// DCDiscoveryOptions tunes denial-constraint discovery.
	DCDiscoveryOptions = dc.DiscoverConfig
)

// NewKNN returns the grey-based kNN imputation baseline.
func NewKNN(opts KNNOptions) (Method, error) { return knn.New(opts) }

// NewDerand returns the Derand baseline guided by a DD set (DDs share the
// RFDc structure).
func NewDerand(dds RFDSet, opts DerandOptions) (Method, error) { return derand.New(dds, opts) }

// NewDerandExact returns the bounded exact solver for the maximize-
// imputed-cells problem Derand approximates (the ILP reference of [23]).
// maxNodes bounds the branch-and-bound (0 = default budget).
func NewDerandExact(dds RFDSet, opts DerandOptions, maxNodes int) (Method, error) {
	im, err := derand.New(dds, opts)
	if err != nil {
		return nil, err
	}
	return derand.NewExact(im, maxNodes), nil
}

// NewHoloclean returns the Holoclean-style probabilistic baseline.
func NewHoloclean(opts HolocleanOptions) (Method, error) { return holoclean.New(opts) }

// RegressionOptions tunes the local linear-regression baseline [26].
type RegressionOptions = regression.Config

// NewMeanMode returns the statistical floor baseline: column mean for
// numerics, column mode otherwise.
func NewMeanMode() Method { return meanmode.New() }

// NewLocalRegression returns the per-tuple linear-regression baseline in
// the spirit of Zhang et al. [26] (numeric attributes only).
func NewLocalRegression(opts RegressionOptions) (Method, error) { return regression.New(opts) }

// DiscoverDCs finds denial constraints for the Holoclean baseline.
func DiscoverDCs(rel *Relation, opts DCDiscoveryOptions) []*DC { return dc.Discover(rel, opts) }

// Evaluation machinery.
type (
	// Injected records one artificially removed cell with ground truth.
	Injected = eval.Injected
	// Variant is one injected dataset of a (rate, seed) grid.
	Variant = eval.Variant
	// Validator is the rule-based result validator (value sets, regexes,
	// numeric deltas).
	Validator = eval.Validator
	// Metrics are precision / recall / F1 per the paper's definitions.
	Metrics = eval.Metrics
)

// Inject removes rate·cells values uniformly at random and returns the
// incomplete clone plus the ground truth.
func Inject(rel *Relation, rate float64, seed int64) (*Relation, []Injected, error) {
	return eval.Inject(rel, rate, seed)
}

// Mechanism names a missingness mechanism for InjectWithMechanism.
type Mechanism = eval.Mechanism

// The supported missingness mechanisms: the paper's uniform protocol and
// the two harder standard settings.
const (
	MCAR = eval.MCAR
	MAR  = eval.MAR
	MNAR = eval.MNAR
)

// InjectWithMechanism removes values under the chosen missingness
// mechanism (MCAR = the paper's protocol; MAR and MNAR bias removals by
// observed data and by the removed values themselves, respectively).
func InjectWithMechanism(rel *Relation, rate float64, mech Mechanism, seed int64) (*Relation, []Injected, error) {
	return eval.InjectWithMechanism(rel, rate, mech, seed)
}

// NewValidator returns a strict-equality validator; add rules with
// AddValueSet / SetRegex / SetDelta.
func NewValidator() *Validator { return eval.NewValidator() }

// LoadRules reads a rule file for the validator.
func LoadRules(r io.Reader) (*Validator, error) { return eval.ReadRules(r) }

// LoadRulesFile is LoadRules over a file path.
func LoadRulesFile(path string) (*Validator, error) { return eval.ReadRulesFile(path) }

// Score compares an imputed relation against the injected ground truth.
func Score(imputed *Relation, injected []Injected, v *Validator) Metrics {
	return eval.Score(imputed, injected, v)
}

// ScoreByAttribute breaks the evaluation down per attribute.
func ScoreByAttribute(imputed *Relation, injected []Injected, v *Validator) map[string]Metrics {
	return eval.ScoreByAttribute(imputed, injected, v)
}

// ImpliesRFD reports whether phi holding on an instance structurally
// guarantees psi holds.
func ImpliesRFD(phi, psi *RFD) bool { return rfd.Implies(phi, psi) }

// MinimizeRFDs returns an irredundant cover of the set (implied members
// dropped).
func MinimizeRFDs(sigma RFDSet) RFDSet { return rfd.Minimize(sigma) }

// RFDMaintainer keeps a discovered RFDc set valid as tuples arrive (the
// incremental-discovery prerequisite of the Sec. 7 streaming extension).
type RFDMaintainer = discovery.Maintainer

// NewRFDMaintainer starts incremental RFDc maintenance from a base
// instance and a set holding on it.
func NewRFDMaintainer(base *Relation, sigma RFDSet) *RFDMaintainer {
	return discovery.NewMaintainer(base, sigma)
}

// GenerateDataset synthesizes one of the paper's evaluation datasets
// ("restaurant", "cars", "glass", "bridges", "physician") at the given
// size and seed.
func GenerateDataset(name string, n int, seed int64) (*Relation, error) {
	return datagen.ByName(name, n, seed)
}

// DatasetNames lists the available synthetic datasets.
func DatasetNames() []string { return datagen.Names() }

// AttrProfile is one attribute's summary from Profile.
type AttrProfile = profile.AttrProfile

// ProfileOptions tunes Profile.
type ProfileOptions = profile.Options

// Profile computes per-attribute summaries (null rate, distinctness,
// numeric range, top values, sampled mean pairwise distance).
func Profile(rel *Relation, opts ProfileOptions) []AttrProfile {
	return profile.Relation(rel, opts)
}
