package renuver

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"
)

const table2CSV = `Name,City,Phone,Type,Class
Granita,Malibu,310/456-0488,Californian,6
Chinois Main,LA,310-392-9025,French,5
Citrus,Los Angeles,213/857-0034,Californian,6
Citrus,Los Angeles,,Californian,6
Fenix,Hollywood,213/848-6677,,5
Fenix Argyle,,213/848-6677,French (new),5
C. Main,Los Angeles,,French,5
`

func loadTable2(t *testing.T) *Relation {
	t.Helper()
	rel, err := LoadCSVString(table2CSV)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func figure1Set(t *testing.T, schema *Schema) RFDSet {
	t.Helper()
	specs := []string{
		"Name(<=8), Phone(<=0), Class(<=1) -> Type(<=0)",
		"Class(<=0) -> Type(<=5)",
		"City(<=2) -> Phone(<=2)",
		"Name(<=4) -> Phone(<=1)",
		"Name(<=8), Phone(<=0) -> City(<=9)",
		"Name(<=6), City(<=9) -> Phone(<=0)",
		"Phone(<=1) -> Class(<=0)",
	}
	var sigma RFDSet
	for _, s := range specs {
		dep, err := ParseRFD(s, schema)
		if err != nil {
			t.Fatal(err)
		}
		sigma = append(sigma, dep)
	}
	return sigma
}

func TestPublicAPIPaperExample(t *testing.T) {
	rel := loadTable2(t)
	res, err := Impute(rel, figure1Set(t, rel.Schema()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Imputed != 4 {
		t.Fatalf("imputed %d, want 4", res.Stats.Imputed)
	}
	phone := rel.Schema().MustIndex("Phone")
	if got := res.Relation.Get(6, phone).Str(); got != "310-392-9025" {
		t.Errorf("t7[Phone] = %q", got)
	}
}

func TestPublicAPIDiscoverAndImpute(t *testing.T) {
	rel, err := GenerateDataset("restaurant", 120, 1)
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := DiscoverRFDs(rel, DiscoveryOptions{MaxThreshold: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(sigma) == 0 {
		t.Fatal("nothing discovered")
	}
	dirty, injected, err := Inject(rel, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Impute(dirty, sigma)
	if err != nil {
		t.Fatal(err)
	}
	m := Score(res.Relation, injected, NewValidator())
	if m.Imputed == 0 {
		t.Error("nothing imputed on the synthetic restaurant data")
	}
	if m.Precision < 0 || m.Precision > 1 || m.F1 < 0 || m.F1 > 1 {
		t.Errorf("metrics out of range: %+v", m)
	}
}

func TestPublicAPIRFDRoundTripFiles(t *testing.T) {
	rel := loadTable2(t)
	sigma := figure1Set(t, rel.Schema())
	dir := t.TempDir()
	sigmaPath := filepath.Join(dir, "sigma.rfd")
	if err := SaveRFDsFile(sigmaPath, sigma, rel.Schema()); err != nil {
		t.Fatal(err)
	}
	back, err := LoadRFDsFile(sigmaPath, rel.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(sigma) {
		t.Errorf("round trip %d -> %d", len(sigma), len(back))
	}
	csvPath := filepath.Join(dir, "rel.csv")
	if err := SaveCSVFile(csvPath, rel); err != nil {
		t.Fatal(err)
	}
	back2, err := LoadCSVFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !back2.Equal(rel) {
		t.Error("csv round trip changed relation")
	}
}

func TestPublicAPIBuildRelationProgrammatically(t *testing.T) {
	schema := NewSchema(
		Attribute{Name: "K", Kind: KindString},
		Attribute{Name: "V", Kind: KindInt},
	)
	rel := NewRelation(schema)
	for i, k := range []string{"a", "a", "b"} {
		if err := rel.Append(Tuple{NewString(k), NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	rel.Set(2, 1, Null)
	if rel.CountMissing() != 1 {
		t.Fatal("null not set")
	}
	var buf bytes.Buffer
	if err := SaveCSV(&buf, rel); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "K,V") {
		t.Errorf("csv = %q", buf.String())
	}
}

func TestPublicAPIBaselinesRunnable(t *testing.T) {
	rel, err := GenerateDataset("glass", 60, 2)
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := DiscoverRFDs(rel, DiscoveryOptions{MaxThreshold: 9})
	if err != nil {
		t.Fatal(err)
	}
	dcs := DiscoverDCs(rel, DCDiscoveryOptions{MaxViolationRate: 0.02, MinEvidence: 1})
	dirty, _, err := Inject(rel, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}

	kn, err := NewKNN(KNNOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dr, err := NewDerand(sigma, DerandOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	hc, err := NewHoloclean(HolocleanOptions{DCs: dcs, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	methods := []Method{AsMethod(NewImputer(sigma)), kn, dr, hc}
	for _, m := range methods {
		out, err := m.Impute(context.Background(), dirty)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if out == dirty {
			t.Fatalf("%s returned the input, want a clone", m.Name())
		}
		if out.Len() != dirty.Len() {
			t.Fatalf("%s changed the row count", m.Name())
		}
	}
}

func TestPublicAPIValidatorRules(t *testing.T) {
	v, err := LoadRules(strings.NewReader("regex Phone: [0-9]\ndelta Class: 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Correct("Phone", NewString("1/2-3"), NewString("123")) {
		t.Error("regex rule inactive")
	}
	if !v.Correct("Class", NewInt(5), NewInt(6)) {
		t.Error("delta rule inactive")
	}
}

func TestPublicAPIOptionsCompose(t *testing.T) {
	rel := loadTable2(t)
	sigma := figure1Set(t, rel.Schema())
	res, err := Impute(rel, sigma,
		WithVerifyMode(VerifyBothSides),
		WithClusterOrder(AscendingThreshold),
		WithMaxCandidates(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MissingCells != 4 {
		t.Errorf("stats = %+v", res.Stats)
	}
}

func TestDatasetNamesAndGeneration(t *testing.T) {
	names := DatasetNames()
	if len(names) != 5 {
		t.Fatalf("names = %v", names)
	}
	for _, name := range names {
		rel, err := GenerateDataset(name, 25, 1)
		if err != nil {
			t.Fatal(err)
		}
		if rel.Len() != 25 {
			t.Errorf("%s: %d rows", name, rel.Len())
		}
	}
}
