package renuver_test

import (
	"fmt"
	"log"
	"strings"

	renuver "repro"
)

// The paper's Table 2 sample: seven restaurants with four missing cells.
const sample = `Name,City,Phone,Type,Class
Granita,Malibu,310/456-0488,Californian,6
Chinois Main,LA,310-392-9025,French,5
Citrus,Los Angeles,213/857-0034,Californian,6
Citrus,Los Angeles,,Californian,6
Fenix,Hollywood,213/848-6677,,5
Fenix Argyle,,213/848-6677,French (new),5
C. Main,Los Angeles,,French,5
`

// ExampleImpute reproduces the worked example of the paper (Sec. 5):
// t7's phone is taken from t2 after t3's closer candidate is rejected by
// the semantic-consistency check.
func ExampleImpute() {
	rel, err := renuver.LoadCSVString(sample)
	if err != nil {
		log.Fatal(err)
	}
	var sigma renuver.RFDSet
	for _, spec := range []string{
		"Name(<=6), City(<=9) -> Phone(<=0)",
		"Phone(<=1) -> Class(<=0)",
	} {
		dep, err := renuver.ParseRFD(spec, rel.Schema())
		if err != nil {
			log.Fatal(err)
		}
		sigma = append(sigma, dep)
	}
	res, err := renuver.Impute(rel, sigma)
	if err != nil {
		log.Fatal(err)
	}
	phone := rel.Schema().MustIndex("Phone")
	fmt.Println(res.Relation.Get(6, phone).Str())
	// Output: 310-392-9025
}

// ExampleDiscoverRFDs finds the exact functional dependency hidden in a
// tiny instance.
func ExampleDiscoverRFDs() {
	rel, err := renuver.LoadCSVString("Dept,Building\nsales,B1\nsales,B1\nhr,B2\nhr,B2\n")
	if err != nil {
		log.Fatal(err)
	}
	sigma, err := renuver.DiscoverRFDs(rel, renuver.DiscoveryOptions{MaxThreshold: 0})
	if err != nil {
		log.Fatal(err)
	}
	for _, dep := range sigma {
		fmt.Println(dep.Format(rel.Schema()))
	}
	// Unordered output:
	// Dept(<=0) -> Building(<=0)
	// Building(<=0) -> Dept(<=0)
}

// ExampleLoadRules shows the paper's rule-based validator judging a
// phone-separator variant as a correct imputation.
func ExampleLoadRules() {
	v, err := renuver.LoadRules(strings.NewReader("regex Phone: [0-9]\n"))
	if err != nil {
		log.Fatal(err)
	}
	imputed := renuver.NewString("213/848-6677")
	expected := renuver.NewString("213-848-6677")
	fmt.Println(v.Correct("Phone", imputed, expected))
	// Output: true
}

// ExampleImputer_NewStream imputes a tuple at arrival time (the paper's
// Sec. 7 incremental extension).
func ExampleImputer_NewStream() {
	rel, err := renuver.LoadCSVString("Key,Value\nk1,v1\nk2,v2\n")
	if err != nil {
		log.Fatal(err)
	}
	dep, err := renuver.ParseRFD("Key(<=0) -> Value(<=0)", rel.Schema())
	if err != nil {
		log.Fatal(err)
	}
	stream := renuver.NewImputer(renuver.RFDSet{dep}).NewStream(rel)
	imps, err := stream.Append(renuver.Tuple{renuver.NewString("k1"), renuver.Null})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(imps[0].Value.Str())
	// Output: v1
}
