package renuver

import (
	"path/filepath"
	"testing"
)

// TestShippedRuleFilesParse loads every rule file under testdata/rules
// and spot-checks the semantics each encodes.
func TestShippedRuleFilesParse(t *testing.T) {
	files, err := filepath.Glob("testdata/rules/*.rules")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 5 {
		t.Fatalf("rule files = %v, want one per dataset", files)
	}
	for _, f := range files {
		if _, err := LoadRulesFile(f); err != nil {
			t.Errorf("%s: %v", f, err)
		}
	}
}

func TestRestaurantRuleFileSemantics(t *testing.T) {
	v, err := LoadRulesFile("testdata/rules/restaurant.rules")
	if err != nil {
		t.Fatal(err)
	}
	if !v.Correct("Phone", NewString("310/456-0488"), NewString("310-456-0488")) {
		t.Error("phone separator variant rejected")
	}
	if v.Correct("Phone", NewString("310/456-0488"), NewString("310-456-0489")) {
		t.Error("different digits accepted")
	}
	if !v.Correct("City", NewString("LA"), NewString("Los Angeles")) {
		t.Error("city alias rejected")
	}
	if !v.Correct("Type", NewString("French (new)"), NewString("French")) {
		t.Error("cuisine variant rejected")
	}
}

func TestCarsRuleFileSemantics(t *testing.T) {
	v, err := LoadRulesFile("testdata/rules/cars.rules")
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Horsepower example: ±25 admissible.
	if !v.Correct("Horsepower", NewInt(150), NewInt(175)) {
		t.Error("±25 horsepower rejected")
	}
	if v.Correct("Horsepower", NewInt(150), NewInt(180)) {
		t.Error("out-of-delta horsepower accepted")
	}
}

func TestGlassRuleFileSemantics(t *testing.T) {
	v, err := LoadRulesFile("testdata/rules/glass.rules")
	if err != nil {
		t.Fatal(err)
	}
	if !v.Correct("Na", NewFloat(13.2), NewFloat(13.7)) {
		t.Error("within-tolerance Na rejected")
	}
	if v.Correct("Na", NewFloat(13.2), NewFloat(14.2)) {
		t.Error("out-of-tolerance Na accepted")
	}
	// Type has no rule: strict equality applies.
	if v.Correct("Type", NewInt(1), NewInt(2)) {
		t.Error("Type should be strict")
	}
}
