package renuver

import (
	"testing"
)

// TestExplainEveryImputedCell is the provenance acceptance check: with
// tracing at 100% sampling, every imputed cell of a realistic injected
// dataset must yield a non-empty, well-ordered explain sequence ending
// in cell_resolved, and every missing-but-unimputed cell one ending in
// cell_abandoned.
func TestExplainEveryImputedCell(t *testing.T) {
	rel, err := GenerateDataset("restaurant", 60, 11)
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := DiscoverRFDs(rel, DiscoveryOptions{MaxThreshold: 6, MaxPairs: 2000})
	if err != nil {
		t.Fatal(err)
	}
	dirty, _, err := Inject(rel, 0.06, 3)
	if err != nil {
		t.Fatal(err)
	}

	tracer := NewRingTracer(0, 1)
	res, err := Impute(dirty, sigma, WithTracer(tracer))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Imputations) == 0 {
		t.Fatal("nothing imputed; the acceptance check needs imputed cells")
	}

	resolved := make(map[Cell]bool, len(res.Imputations))
	for _, imp := range res.Imputations {
		resolved[imp.Cell] = true
	}
	for _, cell := range dirty.MissingCells() {
		evs := res.Explain(cell.Row, cell.Attr)
		if len(evs) == 0 {
			t.Fatalf("missing cell %v has no explain trace", cell)
		}
		if evs[0].Kind != EvCellStarted {
			t.Errorf("cell %v: first event %v, want cell_started", cell, evs[0].Kind)
		}
		wantLast := EvCellAbandoned
		if resolved[cell] {
			wantLast = EvCellResolved
		}
		if got := evs[len(evs)-1].Kind; got != wantLast {
			t.Errorf("cell %v: last event %v, want %v", cell, got, wantLast)
		}
		for i, ev := range evs {
			if ev.Row != cell.Row || ev.Attr != cell.Attr || ev.Seq != i {
				t.Errorf("cell %v: malformed event %d: %+v", cell, i, ev)
			}
		}
		// The text rendering is available for every traced cell.
		if txt := res.ExplainText(dirty.Schema(), cell.Row, cell.Attr); txt == "" {
			t.Errorf("cell %v: empty ExplainText", cell)
		}
	}
}
