# Tier-1 entrypoint: `make check` is the gate every change must pass —
# formatting, vet, a full build, and the full test suite.

GO ?= go

# Scratch directory for freshly measured benchmark JSON; the committed
# BENCH_*.json files in the repo root are the baselines benchdiff gates
# against.
BENCHTMP := .bench-tmp

.PHONY: check fmt vet vet-ctx build test kernels race bench bench-dist bench-shard bench-json bench-check bench-update golden smoke artifact-roundtrip

check: fmt vet vet-ctx build kernels test artifact-roundtrip bench-check

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Context-hygiene passes for the Session API: lostcancel catches leaked
# context.CancelFuncs, httpresponse catches deferring Body.Close before
# the error check in serve-mode clients/tests.
vet-ctx:
	$(GO) vet -lostcancel -httpresponse ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Kernel-agreement gate: the exhaustive small-alphabet enumeration and
# the differential random sweep prove the Myers bit-parallel kernel, the
# banded DP, and the automatic dispatch byte-identical to the naive
# oracle. Short mode keeps it fast enough to run before the full suite.
kernels:
	$(GO) test -short -count=1 -run 'TestExhaustiveKernelAgreement|TestKernelDifferentialRandom' ./internal/distance/

# The concurrency-sensitive packages (parallel imputation, parallel
# discovery, the lock-free metrics sink, the trace ring) under the race
# detector, with tracing exercised at 100% sampling by the stress tests
# and concurrent Discover runs sharing one engine view/cache.
race:
	$(GO) test -race ./internal/core/... ./internal/discovery/... ./internal/engine/... ./internal/obs/...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/core/... ./internal/discovery/...

# String-kernel microbenchmarks: per-kernel exact distance and the
# bounded predicate's pre-filter paths, with allocation counts (which
# must stay at zero).
bench-dist:
	$(GO) test -bench 'BenchmarkKernels|BenchmarkWithinPrefilter' -benchmem -run=^$$ ./internal/distance/

# Sharded-discovery microbenchmarks: the bounded-memory partition
# pipeline across shard counts (1 = legacy flat slab), with allocation
# counts. The peak-memory acceptance bound itself is asserted by the
# env-gated TestBenchShardJSON emitter in bench-json.
bench-shard:
	$(GO) test -bench BenchmarkDiscoverSharded -benchmem -run=^$$ ./internal/discovery/

# Measure the six benchmark JSON documents (core, engine, session,
# delta, discovery, shard) into $(BENCHTMP) via the env-gated
# TestBench*JSON emitters.
bench-json:
	@mkdir -p $(BENCHTMP)
	BENCH_OUT=$(abspath $(BENCHTMP))/BENCH_core.json $(GO) test -run TestBenchJSON -count=1 ./internal/core/
	BENCH_ENGINE_OUT=$(abspath $(BENCHTMP))/BENCH_engine.json $(GO) test -run TestBenchEngineJSON -count=1 ./internal/core/
	BENCH_SESSION_OUT=$(abspath $(BENCHTMP))/BENCH_session.json $(GO) test -run TestBenchSessionJSON -count=1 ./internal/core/
	BENCH_DELTA_OUT=$(abspath $(BENCHTMP))/BENCH_delta.json $(GO) test -run TestBenchDeltaJSON -count=1 ./internal/core/
	BENCH_DISCOVERY_OUT=$(abspath $(BENCHTMP))/BENCH_discovery.json $(GO) test -run TestBenchDiscoveryJSON -count=1 ./internal/discovery/
	BENCH_SHARD_OUT=$(abspath $(BENCHTMP))/BENCH_shard.json $(GO) test -run TestBenchShardJSON -count=1 ./internal/discovery/

# The perf-regression gate: fresh measurements against the committed
# baselines. Wall clock gets a wide band (noisy hosts); allocation
# counts a tight one (deterministic). Fails the build on regression.
bench-check: bench-json
	$(GO) run ./cmd/benchdiff \
	  BENCH_core.json $(BENCHTMP)/BENCH_core.json \
	  BENCH_engine.json $(BENCHTMP)/BENCH_engine.json \
	  BENCH_session.json $(BENCHTMP)/BENCH_session.json \
	  BENCH_delta.json $(BENCHTMP)/BENCH_delta.json \
	  BENCH_discovery.json $(BENCHTMP)/BENCH_discovery.json \
	  BENCH_shard.json $(BENCHTMP)/BENCH_shard.json

# Bless the current figures as the new committed baselines after an
# intentional performance change; diff the result before committing.
bench-update: bench-json
	cp $(BENCHTMP)/BENCH_core.json $(BENCHTMP)/BENCH_engine.json \
	   $(BENCHTMP)/BENCH_session.json $(BENCHTMP)/BENCH_delta.json \
	   $(BENCHTMP)/BENCH_discovery.json $(BENCHTMP)/BENCH_shard.json .

# Artifact-layer gate: deterministic encoding (double-compile is
# byte-identical, the committed golden checksum still matches), full
# round-trip parity against from-scratch sessions, the decoder's typed
# errors under corruption, and the compile -> serve -artifact CLI path.
artifact-roundtrip:
	$(GO) test -count=1 \
	  -run 'TestArtifact|TestCompileServeArtifactRoundTrip|TestDeterministic|TestDecode|TestRoundTrip|TestSharedRoundTrip|TestIndex.*RoundTrip' \
	  ./internal/artifact/ ./internal/engine/ ./internal/core/ ./cmd/renuver/

# Regenerate the golden files (trace JSONL schema) after an intentional
# schema change; diff the result before committing.
golden:
	$(GO) test ./internal/core/ -run Golden -update-golden

# End-to-end smoke: boot `renuver serve` on a loopback port, drive the
# /v1 surface concurrently, and verify a clean SIGTERM drain.
smoke:
	RENUVER_SMOKE=1 $(GO) test ./cmd/renuver/ -run TestServeSmoke -count=1 -v
