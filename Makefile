# Tier-1 entrypoint: `make check` is the gate every change must pass —
# formatting, vet, a full build, and the full test suite.

GO ?= go

.PHONY: check fmt vet vet-ctx build test kernels race bench bench-dist golden smoke

check: fmt vet vet-ctx build kernels test

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Context-hygiene passes for the Session API: lostcancel catches leaked
# context.CancelFuncs, httpresponse catches deferring Body.Close before
# the error check in serve-mode clients/tests.
vet-ctx:
	$(GO) vet -lostcancel -httpresponse ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Kernel-agreement gate: the exhaustive small-alphabet enumeration and
# the differential random sweep prove the Myers bit-parallel kernel, the
# banded DP, and the automatic dispatch byte-identical to the naive
# oracle. Short mode keeps it fast enough to run before the full suite.
kernels:
	$(GO) test -short -count=1 -run 'TestExhaustiveKernelAgreement|TestKernelDifferentialRandom' ./internal/distance/

# The concurrency-sensitive packages (parallel imputation, parallel
# discovery, the lock-free metrics sink, the trace ring) under the race
# detector, with tracing exercised at 100% sampling by the stress tests
# and concurrent Discover runs sharing one engine view/cache.
race:
	$(GO) test -race ./internal/core/... ./internal/discovery/... ./internal/engine/... ./internal/obs/...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/core/... ./internal/discovery/...

# String-kernel microbenchmarks: per-kernel exact distance and the
# bounded predicate's pre-filter paths, with allocation counts (which
# must stay at zero).
bench-dist:
	$(GO) test -bench 'BenchmarkKernels|BenchmarkWithinPrefilter' -benchmem -run=^$$ ./internal/distance/

# Regenerate the golden files (trace JSONL schema) after an intentional
# schema change; diff the result before committing.
golden:
	$(GO) test ./internal/core/ -run Golden -update-golden

# End-to-end smoke: boot `renuver serve` on a loopback port, drive the
# /v1 surface concurrently, and verify a clean SIGTERM drain.
smoke:
	RENUVER_SMOKE=1 $(GO) test ./cmd/renuver/ -run TestServeSmoke -count=1 -v
