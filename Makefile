# Tier-1 entrypoint: `make check` is the gate every change must pass —
# formatting, vet, a full build, and the full test suite.

GO ?= go

.PHONY: check fmt vet build test race bench golden

check: fmt vet build test

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-sensitive packages (parallel imputation, parallel
# discovery, the lock-free metrics sink, the trace ring) under the race
# detector, with tracing exercised at 100% sampling by the stress tests
# and concurrent Discover runs sharing one engine view/cache.
race:
	$(GO) test -race ./internal/core/... ./internal/discovery/... ./internal/engine/... ./internal/obs/...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/core/... ./internal/discovery/...

# Regenerate the golden files (trace JSONL schema) after an intentional
# schema change; diff the result before committing.
golden:
	$(GO) test ./internal/core/ -run Golden -update-golden
